"""``spectresim`` command line interface.

Reproduce any paper artifact from a shell::

    spectresim cpus
    spectresim table 5
    spectresim table 9           # speculation matrix, IBRS off
    spectresim figure 2 --fast
    spectresim vm
    spectresim parsec
    spectresim bimodal --cpu cascade_lake
    spectresim attacks --cpu broadwell
    spectresim all --outdir results

Observability::

    spectresim profile figure 2 --fast --trace-out t.json --flame-out t.folded
    spectresim --trace t.json figure 3 --fast    # trace any command
    spectresim leakage matrix                    # taint-oracle leak surface
    spectresim leakage events --trace-out leaks.json
    spectresim fuzz --seed 1 --programs 25       # differential fuzzing
    spectresim fuzz --smoke                      # CI-sized campaign
    spectresim fuzz --replay fuzz-out/<case>.prog   # confirm a fix
    spectresim explain --replay fuzz-out/<case>.prog   # first divergence
    spectresim explain --cell broadwell:off --fault verw --json

Parallelism and caching (see ``docs/parallelism.md``)::

    spectresim figure 2 --jobs 8                 # fan cells over 8 processes
    spectresim figure 2 --jobs 8                 # rerun: 100% cache hits
    spectresim figure 3 --no-cache               # force fresh simulation
    spectresim export figure2 --jobs 4 --resume  # pick up an interrupted run
    spectresim all --outdir results --jobs 8 --cache-dir /tmp/sscache

Run history (``bench``/``check``/``profile`` auto-record; disable with
``--no-history``)::

    spectresim history list
    spectresim history diff 1 2                  # ledger blame waterfall
    spectresim history diff prev latest
    spectresim history report --out history.html
    spectresim history record BENCH_2.json --allow-dirty
    spectresim history gc --keep 50 --dry-run
    spectresim history gc --keep 50
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, Optional, Sequence

from . import obs
from .cpu import Machine, Mode, all_cpus, get_cpu
from .cpu import engine as blockengine
from .cpu import replicas as replicabatch
from .core import microbench, reporting, study
from .core.probe import DEFAULT_TRIALS, speculation_matrix
from .core.study import Settings
from .mitigations import linux_default
from .mitigations.meltdown import attempt_meltdown
from .mitigations.mds import attempt_mds_sample, kernel_touched_secret
from .mitigations.spectre_v1 import attempt_bounds_bypass
from .mitigations.spectre_v2 import attempt_btb_injection
from .mitigations.ssb import attempt_store_bypass


def _positive_int(text: str) -> int:
    """argparse type for ``--jobs``-style counts: reject zero, negative,
    and non-integer values at parse time, so the user gets a one-line
    usage error instead of a traceback from deep inside the executor."""
    try:
        value = int(text)
    except ValueError:
        value = 0
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}")
    return value


def _settings(args: argparse.Namespace) -> Settings:
    import dataclasses as _dataclasses
    settings = Settings.fast() if getattr(args, "fast", False) else Settings()
    replicas = getattr(args, "replicas", None)
    if replicas is not None and replicas != settings.replicas:
        settings = _dataclasses.replace(settings, replicas=replicas)
    return settings


def _study_executor(args: argparse.Namespace) -> "StudyExecutor":
    """Build the execution engine from the command's ``--jobs``/cache
    flags; commands without those flags get the inline serial default."""
    from .core.executor import StudyExecutor, default_cache_dir
    if getattr(args, "no_cache", False):
        cache_dir = None
    else:
        cache_dir = getattr(args, "cache_dir", None)
        if cache_dir is None and hasattr(args, "jobs"):
            cache_dir = default_cache_dir()
    return StudyExecutor(
        jobs=getattr(args, "jobs", 1),
        cache_dir=cache_dir,
        resume=getattr(args, "resume", False),
    )


def _report_executor(label: str, executor: "StudyExecutor") -> None:
    """One status line per driver run, on stderr so artifact output on
    stdout stays byte-identical across serial/parallel/cached runs."""
    sys.stderr.write(f"[executor] {label}: {executor.stats.summary()}\n")


def _history_path(args: argparse.Namespace) -> str:
    """Resolve the history db: ``history --db``, global ``--history-db``,
    then ``$SPECTRESIM_HISTORY_DB`` / the committed fixture."""
    from .obs.history import default_history_db
    return (getattr(args, "db", None)
            or getattr(args, "history_db", None)
            or default_history_db())


def _history_autorecord(args: argparse.Namespace, payload: Dict,
                        kind: str) -> None:
    """Append a run to the history db; best-effort (a refused or failed
    record warns on stderr, never fails the producing command)."""
    if getattr(args, "no_history", False):
        return
    from .errors import HistoryError
    from .obs.history import HistoryStore
    path = _history_path(args)
    try:
        with HistoryStore(path) as store:
            run_id = store.record_payload(payload, kind=kind)
        sys.stderr.write(f"[history] recorded run {run_id} ({kind}) -> "
                         f"{path}\n")
    except HistoryError as exc:
        sys.stderr.write(f"[history] not recorded: {exc}\n")


def _selected_cpus(args: argparse.Namespace):
    keys = getattr(args, "cpus", None)
    if not keys:
        return list(all_cpus())
    return [get_cpu(key) for key in keys]


def cmd_cpus(args: argparse.Namespace) -> str:
    return reporting.render_table2()


def cmd_table(args: argparse.Namespace) -> str:
    n = args.number
    iters = args.iterations
    if n == 1:
        return reporting.render_table1()
    if n == 2:
        return reporting.render_table2()
    if n == 3:
        return reporting.render_table3(
            [microbench.table3_row(cpu, iters) for cpu in all_cpus()])
    if n == 4:
        return reporting.render_table4(
            {cpu.key: microbench.table4_value(cpu, iters) for cpu in all_cpus()})
    if n == 5:
        return reporting.render_table5(
            [microbench.table5_row(cpu, iters) for cpu in all_cpus()])
    if n == 6:
        return reporting.render_table6(
            {cpu.key: microbench.table6_value(cpu, min(iters, 200))
             for cpu in all_cpus()})
    if n == 7:
        return reporting.render_table7(
            {cpu.key: microbench.table7_value(cpu, iters) for cpu in all_cpus()})
    if n == 8:
        return reporting.render_table8(
            {cpu.key: microbench.table8_value(cpu, iters) for cpu in all_cpus()})
    if n in (9, 10):
        matrix = speculation_matrix(tuple(all_cpus()), ibrs=(n == 10))
        return reporting.render_speculation_matrix(matrix, ibrs=(n == 10))
    raise SystemExit(f"no table {n} in the paper's evaluation")


def cmd_figure(args: argparse.Namespace) -> str:
    settings = _settings(args)
    cpus = _selected_cpus(args)
    executor = _study_executor(args)
    try:
        if args.number == 2:
            return reporting.render_figure2(
                study.figure2(cpus, settings, executor=executor))
        if args.number == 3:
            return reporting.render_figure3(
                study.figure3(cpus, settings, executor=executor))
        if args.number == 5:
            return reporting.render_figure5(
                study.figure5(cpus, settings=settings, executor=executor))
    finally:
        if executor.stats.total:
            _report_executor(f"figure{args.number}", executor)
    raise SystemExit(f"no figure {args.number} to regenerate")


def cmd_vm(args: argparse.Namespace) -> str:
    settings = _settings(args)
    cpus = _selected_cpus(args)
    executor = _study_executor(args)
    out = reporting.render_paired(
        study.vm_lebench_overheads(cpus, settings, executor=executor),
        "Section 4.4: LEBench in a VM, host mitigations on vs off")
    _report_executor("vm_lebench", executor)
    out += reporting.render_paired(
        study.lfs_overheads(cpus, settings=settings, executor=executor),
        "Section 4.4: LFS against an emulated disk, host mitigations on vs off")
    _report_executor("lfs", executor)
    return out


def cmd_parsec(args: argparse.Namespace) -> str:
    settings = _settings(args)
    cpus = _selected_cpus(args)
    executor = _study_executor(args)
    out = reporting.render_paired(
        study.parsec_default_overheads(cpus, settings=settings,
                                       executor=executor),
        "Section 4.5: PARSEC with default mitigations vs none")
    _report_executor("parsec_default", executor)
    return out


def cmd_bimodal(args: argparse.Namespace) -> str:
    cpu = get_cpu(args.cpu)
    latencies = microbench.kernel_entry_latencies(cpu, entries=args.entries)
    return reporting.render_entry_distribution(cpu.key, latencies)


def cmd_attacks(args: argparse.Namespace) -> str:
    """Run every attack demo with and without its mitigation."""
    cpu = get_cpu(args.cpu)
    lines = [f"Attack demonstrations on {cpu.key}", ""]

    machine = Machine(cpu)
    lines.append(f"  Meltdown, KPTI off : leaked byte "
                 f"{attempt_meltdown(machine, 0x42)!r}")
    machine.kernel_mapped_in_user = False
    lines.append(f"  Meltdown, KPTI on  : leaked byte "
                 f"{attempt_meltdown(machine, 0x42)!r}")

    lines.append(f"  Spectre V1 raw     : leaked byte "
                 f"{attempt_bounds_bypass(Machine(cpu), 0x5A)!r}")
    lines.append(f"  Spectre V1 lfence  : leaked byte "
                 f"{attempt_bounds_bypass(Machine(cpu), 0x5A, lfence_hardened=True)!r}")
    lines.append(f"  Spectre V1 masking : leaked byte "
                 f"{attempt_bounds_bypass(Machine(cpu), 0x5A, masked=True)!r}")

    lines.append(f"  Spectre V2 raw     : injected = "
                 f"{attempt_btb_injection(Machine(cpu), Mode.USER, Mode.KERNEL)}")
    lines.append(f"  Spectre V2 + IBPB  : injected = "
                 f"{attempt_btb_injection(Machine(cpu), Mode.USER, Mode.KERNEL, ibpb_between=True)}")

    machine = Machine(cpu)
    lines.append(f"  SSB, SSBD off      : stale byte "
                 f"{attempt_store_bypass(machine, 0x77)!r}")
    machine = Machine(cpu)
    machine.msr.set_ssbd(True)
    lines.append(f"  SSB, SSBD on       : stale byte "
                 f"{attempt_store_bypass(machine, 0x77)!r}")

    machine = Machine(cpu)
    kernel_touched_secret(machine, 0xDEAD)
    lines.append(f"  MDS, no verw       : sampled "
                 f"{attempt_mds_sample(machine)!r}")
    from .cpu import isa as _isa
    machine.mode = Mode.KERNEL
    machine.execute(_isa.verw())
    machine.mode = Mode.USER
    lines.append(f"  MDS, after verw    : sampled "
                 f"{attempt_mds_sample(machine)!r}")

    from .mitigations.spectre_rsb import attempt_planted_return
    lines.append(f"  SpectreRSB raw     : gadget ran = "
                 f"{attempt_planted_return(Machine(cpu))}")
    lines.append(f"  SpectreRSB stuffed : gadget ran = "
                 f"{attempt_planted_return(Machine(cpu), stuffed=True)}")

    from .mitigations.bhi import attempt_bhi
    lines.append(f"  BHI vs eIBRS       : gadget ran = "
                 f"{attempt_bhi(Machine(cpu), eibrs=True)}")
    lines.append(f"  BHI vs retpolines  : gadget ran = "
                 f"{attempt_bhi(Machine(cpu), retpolines=True)}")

    if cpu.smt:
        from .cpu.smt import SMTCore
        from .mitigations.mds import attempt_cross_thread_mds
        from .mitigations.stibp import attempt_cross_thread_injection
        lines.append(f"  SMT V2, no STIBP   : injected = "
                     f"{attempt_cross_thread_injection(SMTCore(cpu))}")
        lines.append(f"  SMT V2, STIBP      : injected = "
                     f"{attempt_cross_thread_injection(SMTCore(cpu), stibp=True)}")
        lines.append(f"  SMT MDS sampling   : sampled "
                     f"{attempt_cross_thread_mds(SMTCore(cpu))!r}")
    return "\n".join(lines) + "\n"


def cmd_sweep(args: argparse.Namespace) -> str:
    """Draw the overhead-vs-operation-size or SSBD-density curve."""
    from .core import sweeps
    cpu = get_cpu(args.cpu)
    if args.kind == "opsize":
        result = sweeps.overhead_vs_operation_size(cpu, linux_default(cpu))
        threshold = args.threshold
        crossing = result.first_below(threshold)
        lines = [f"Mitigation overhead vs kernel-work size on {cpu.key}:"]
        for x, y in zip(result.xs, result.ys):
            lines.append(f"  {int(x):>8d} cycles/op -> {y:7.1f}% overhead")
        if crossing is not None:
            lines.append(f"  overhead drops below {threshold:.0f}% at "
                         f"~{crossing:.0f}-cycle operations")
        return "\n".join(lines) + "\n"
    if args.kind == "ssbd":
        result = sweeps.ssbd_overhead_vs_forwarding_density(cpu)
        lines = [f"SSBD slowdown vs store->load density on {cpu.key}:"]
        for x, y in zip(result.xs, result.ys):
            lines.append(f"  {int(x):>4d} pairs/iter -> {y:6.1f}% slowdown")
        return "\n".join(lines) + "\n"
    raise SystemExit(f"unknown sweep kind {args.kind!r}")


def _run_manifest(command: str, settings: Optional[Settings],
                  cpus, **extra) -> obs.RunManifest:
    """Full provenance for a CLI run: seed, CPU list, and the default
    mitigation config each CPU would boot with."""
    config: Dict[str, object] = {
        cpu.key: obs.config_to_dict(linux_default(cpu)) for cpu in cpus
    }
    return obs.build_manifest(
        command=command,
        seed=settings.seed if settings is not None else None,
        cpus=[cpu.key for cpu in cpus],
        config=config,
        settings=settings,
        **extra,
    )


def cmd_export(args: argparse.Namespace) -> str:
    """Emit one experiment's results as JSON."""
    from .core import export
    settings = _settings(args)
    cpus = _selected_cpus(args)
    executor = _study_executor(args)
    manifest = _run_manifest(f"export {args.experiment}", settings, cpus)
    if args.experiment == "figure2":
        out = export.attributions_to_json(
            study.figure2(cpus, settings, executor=executor),
            provenance=manifest) + "\n"
        _report_executor("figure2", executor)
        return out
    if args.experiment == "figure3":
        out = export.attributions_to_json(
            study.figure3(cpus, settings, executor=executor),
            provenance=manifest) + "\n"
        _report_executor("figure3", executor)
        return out
    if args.experiment == "figure5":
        out = export.paired_to_json(
            study.figure5(cpus, settings=settings, executor=executor),
            provenance=manifest) + "\n"
        _report_executor("figure5", executor)
        return out
    if args.experiment == "table9":
        return export.speculation_matrix_to_json(
            speculation_matrix(tuple(cpus), ibrs=False),
            provenance=manifest) + "\n"
    if args.experiment == "table10":
        return export.speculation_matrix_to_json(
            speculation_matrix(tuple(cpus), ibrs=True),
            provenance=manifest) + "\n"
    raise SystemExit(f"unknown experiment {args.experiment!r}")


def cmd_summary(args: argparse.Namespace) -> str:
    """Recompute the paper's section-8 answers from the data."""
    from .core.summary import render_summary, summarize
    return render_summary(summarize(_settings(args)))


def cmd_regress(args: argparse.Namespace) -> str:
    """Diff two exported JSON result files."""
    from .core.regression import diff_results, render_diff
    with open(args.old) as f:
        old = f.read()
    with open(args.new) as f:
        new = f.read()
    return render_diff(diff_results(old, new, tolerance=args.tolerance))


def cmd_profile(args: argparse.Namespace) -> str:
    """Run one artifact under the span tracer; write trace/flame files."""
    import contextlib
    settings = _settings(args)
    cpus = _selected_cpus(args)
    tracer = obs.SpanTracer()
    ledger = obs.CycleLedger() if args.ledger_out else None
    ledger_cm = (obs.use_ledger(ledger) if ledger is not None
                 else contextlib.nullcontext())
    started = time.perf_counter()
    with obs.use_tracer(tracer), ledger_cm:
        if args.kind == "figure":
            rendered = cmd_figure(args)
        else:
            # Tables are microbenchmarks without deep instrumentation; a
            # coarse top-level span still times the whole render.
            with tracer.span(f"table.{args.number}"):
                rendered = cmd_table(args)
    wall = time.perf_counter() - started
    manifest = _run_manifest(
        f"profile {args.kind} {args.number}", settings, cpus,
        wall_time_s=round(wall, 3), sim_cycles=tracer.total_cycles())

    lines = [rendered.rstrip("\n"), ""]
    if args.trace_out:
        obs.write_chrome_trace(args.trace_out, tracer, provenance=manifest,
                               ledger=ledger)
        lines.append(f"trace: wrote {len(tracer.spans)} spans to "
                     f"{args.trace_out}")
    if args.flame_out:
        obs.write_flamegraph(args.flame_out, tracer)
        lines.append(f"flame: wrote collapsed stacks to {args.flame_out}")
    if ledger is not None:
        ledger.verify()
        with open(args.ledger_out, "w") as f:
            f.write(ledger.report())
        lines.append(f"ledger: {ledger.total():,} cycles attributed, "
                     f"invariant verified -> {args.ledger_out}")
    blockengine.publish_metrics(tracer.metrics)
    replicabatch.publish_metrics(tracer.metrics)
    if args.metrics_out:
        with open(args.metrics_out, "w") as f:
            f.write(tracer.metrics.to_json())
        lines.append(f"metrics: wrote registry to {args.metrics_out}")

    # Profile runs carry no study values, but their self-performance
    # telemetry (and ledger, when attributed) still belongs in the
    # longitudinal record.
    engine_stats = blockengine.STATS.as_dict()
    engine_stats["hit_rate"] = blockengine.STATS.hit_rate()
    replica_stats = replicabatch.STATS.as_dict()
    replica_stats["hit_rate"] = replicabatch.STATS.hit_rate()
    ledgers = {}
    if ledger is not None:
        ledgers["+".join(cpu.key for cpu in cpus)] = {
            "entries": ledger.paths(), "total": ledger.total()}
    _history_autorecord(args, {
        "values": {},
        "ledger": ledgers,
        "telemetry": {
            "wall_s": wall,
            "engine": engine_stats,
            "replicas": replica_stats,
            "replicas_per_s": (replica_stats["replicas"] / wall
                               if wall > 0 else 0.0),
            "coverage": tracer.coverage(),
        },
        "tolerance": {},
        "provenance": manifest.to_dict(),
    }, kind="profile")

    lines.append(f"coverage: {100.0 * tracer.coverage():.1f}% of "
                 f"{tracer.total_cycles()} simulated cycles attributed "
                 f"to named spans")
    lines.append(f"engine: {blockengine.default_engine()} — "
                 f"{blockengine.STATS.summary()}")
    lines.append(f"replicas: {replicabatch.STATS.summary()}")
    lines.append("")
    lines.append(tracer.report().rstrip("\n"))
    return "\n".join(lines) + "\n"


def cmd_bench(args: argparse.Namespace) -> str:
    """Snapshot the pinned study grid into a versioned BENCH_<n>.json."""
    from .obs import baseline
    executor = _study_executor(args)
    settings = _settings(args)
    cpus = args.cpus or list(baseline.DEFAULT_BENCH_CPUS)
    payload = baseline.collect(
        cpus=cpus, settings=settings,
        drivers=args.drivers or None, executor=executor, command="bench",
        report=lambda driver: _report_executor(f"bench {driver}", executor))
    path = args.out or baseline.next_bench_path(args.dir)
    baseline.write_bench(payload, path)
    _history_autorecord(args, payload, kind="bench")
    ledger_total = sum(roll["total"] for roll in payload["ledger"].values())
    return (f"bench: {len(payload['values'])} values, "
            f"{ledger_total:,} attributed ledger cycles across "
            f"{len(payload['ledger'])} CPUs -> {path}\n")


def cmd_check(args: argparse.Namespace) -> str:
    """Re-run a baseline's grid and gate on noise-aware regressions."""
    from .obs import baseline
    executor = _study_executor(args)
    diff, report = baseline.check_against(
        args.against, executor=executor,
        report=lambda driver: _report_executor(f"check {driver}", executor),
        on_payload=lambda payload: _history_autorecord(args, payload,
                                                       kind="check"))
    if diff.failed:
        # Print before exiting nonzero: main() only writes the returned
        # string on the success path.
        sys.stdout.write(report)
        raise SystemExit(1)
    return report


def cmd_history(args: argparse.Namespace) -> str:
    """Run-history store: record, list, diff, report, gc."""
    from .errors import HistoryError
    from .obs import history as hist
    from .obs import report as histreport
    path = _history_path(args)
    try:
        if args.history_command == "record":
            from .obs import baseline
            payload = baseline.load_bench(args.payload)
            with hist.HistoryStore(path) as store:
                run_id = store.record_payload(
                    payload, kind=args.kind, allow_dirty=args.allow_dirty)
                dirty = store.run_info(run_id).dirty
            flag = " (flagged dirty)" if dirty else ""
            return (f"history: recorded run {run_id} ({args.kind}){flag} "
                    f"-> {path}\n")
        if args.history_command == "list":
            with hist.HistoryStore(path) as store:
                runs = store.runs()
            if not runs:
                return f"history: no runs in {path}\n"
            lines = [f"{'id':>4}  {'kind':<8} {'recorded':<26} "
                     f"{'fingerprint':<17} {'dirty':<6} {'values':>6} "
                     f"{'ledger cycles':>14}  command"]
            for run in runs:
                lines.append(
                    f"{run.id:>4}  {run.kind:<8} {run.created_at:<26} "
                    f"{run.fingerprint or '-':<17} "
                    f"{'yes' if run.dirty else 'no':<6} {run.values:>6} "
                    f"{run.ledger_cycles:>14,}  {run.command}")
            return "\n".join(lines) + "\n"
        if args.history_command == "diff":
            with hist.HistoryStore(path) as store:
                id_a = store.resolve(args.run_a)
                id_b = store.resolve(args.run_b)
                diff = store.diff(id_a, id_b)
            rendered = hist.render_diff(diff, label_a=f"run {id_a}",
                                        label_b=f"run {id_b}")
            if diff.failed:
                # Same contract as 'spectresim check': print the report,
                # then exit nonzero so CI gates on it.
                sys.stdout.write(rendered)
                raise SystemExit(1)
            return rendered
        if args.history_command == "report":
            with hist.HistoryStore(path) as store:
                out = histreport.write_report(store, args.out,
                                              title=args.title)
                count = len(store)
            return f"history: dashboard over {count} run(s) -> {out}\n"
        if args.history_command == "gc":
            dry_run = getattr(args, "dry_run", False)
            with hist.HistoryStore(path) as store:
                removed = store.gc(args.keep, dry_run=dry_run)
                kept = len(store) - (len(removed) if dry_run else 0)
            if dry_run:
                doomed = ", ".join(str(i) for i in removed) or "none"
                return (f"history: would remove {len(removed)} run(s) "
                        f"[{doomed}], keeping {kept} -> {path}\n")
            return (f"history: removed {len(removed)} run(s), kept {kept} "
                    f"-> {path}\n")
    except HistoryError as exc:
        raise SystemExit(f"history: {exc}")
    raise SystemExit(f"unknown history action {args.history_command!r}")


def cmd_leakage(args: argparse.Namespace) -> str:
    """Taint-oracle leakage surface: per-CPU matrix or raw event log."""
    import json
    from .core.probe import leakage_report
    cpus = _selected_cpus(args)
    report = leakage_report(tuple(cpus), policy=args.policy,
                            trials=args.trials,
                            max_events=args.max_events)
    if args.leakage_command == "matrix":
        if args.json:
            slim = dict(report)
            slim.pop("events", None)
            return json.dumps(slim, indent=2, sort_keys=True) + "\n"
        lines = [f"Speculative-leakage matrix (taint oracle, policy: "
                 f"{args.policy})", ""]
        leaks = total = 0
        for cpu_key in sorted(report["matrix"]):
            row = report["matrix"][cpu_key]
            lines.append(f"{cpu_key}:")
            if row is None:
                lines.append("  (policy not supported on this part)")
                continue
            for boundary in sorted(row):
                cell = row[boundary]
                total += 1
                if cell["leaked"]:
                    leaks += 1
                    verdict = f"LEAK ({cell['events']} events)"
                else:
                    why = ", ".join(cell["blocked_by"]) or "no speculation"
                    verdict = f"blocked by {why}"
                lines.append(f"  {boundary:<24} {verdict}")
        lines.append("")
        lines.append(f"{leaks} leaking cell(s) out of {total}")
        return "\n".join(lines) + "\n"
    if args.leakage_command == "events":
        if args.trace_out:
            # Rehydrate the aggregate flight recorder so the Perfetto
            # export gets real LeakageEvent instants + merged state.
            tracer = obs.LeakageTracer(policy=args.policy)
            tracer.events = [obs.LeakageEvent(**e)
                             for e in report["events"]]
            tracer.merge_state(report["state"])
            obs.write_chrome_trace(args.trace_out, obs.SpanTracer(),
                                   leakage=tracer)
        if args.json:
            return json.dumps(report["events"], indent=2) + "\n"
        lines = [f"Leakage events (policy: {args.policy}, "
                 f"{len(report['events'])} shown)"]
        for e in report["events"]:
            lines.append(f"  tsc={e['tsc']:<8} {e['cpu']:<16} "
                         f"{e['primitive']:<12} {e['channel']:<14} "
                         f"{e['boundary']:<22} sink={e['sink']}")
        if args.trace_out:
            lines.append(f"trace: wrote {len(report['events'])} leakage "
                         f"instants to {args.trace_out}")
        return "\n".join(lines) + "\n"
    raise SystemExit(f"unknown leakage action {args.leakage_command!r}")


#: The --smoke grid: one part per predictor family (IBRS-classic,
#: eIBRS mode-tagged, Zen 3 opaque-index), sized for a CI gate.
_FUZZ_SMOKE_CPUS = ("broadwell", "cascade_lake", "zen3")
_FUZZ_SMOKE_PROGRAMS = 6
_FUZZ_DEFAULT_PROGRAMS = 25


def _fuzz_violation_lines(violations) -> list:
    lines = []
    for v in violations:
        where = f"{v.cpu} x {v.policy}"
        if v.scenario:
            where += f" x {v.scenario}"
        lines.append(f"  [{v.oracle}] {v.program} on {where}: {v.detail}")
    return lines


def cmd_fuzz(args: argparse.Namespace) -> str:
    """Differential scenario fuzzing: random programs swept over the
    CPU x policy grid against the engine-parity and leakage-contract
    oracles; violations are minimized into replayable reproducers."""
    import json
    from . import fuzz as fuzzmod
    from .obs.progress import ProgressLine
    if args.replay:
        violations = fuzzmod.replay_reproducer(args.replay)
        if violations:
            lines = [f"fuzz: replay of {args.replay} still violates:"]
            lines.extend(_fuzz_violation_lines(violations))
            sys.stdout.write("\n".join(lines) + "\n")
            raise SystemExit(1)
        return f"fuzz: replay of {args.replay} no longer violates\n"

    programs = args.programs
    if programs is None:
        programs = (_FUZZ_SMOKE_PROGRAMS if args.smoke
                    else _FUZZ_DEFAULT_PROGRAMS)
    cpu_keys = tuple(args.cpus) if args.cpus else ()
    if args.smoke and not cpu_keys:
        cpu_keys = _FUZZ_SMOKE_CPUS
    config = fuzzmod.FuzzConfig(seed=args.seed, programs=programs,
                                cpu_keys=cpu_keys, trials=args.trials,
                                jobs=args.jobs)
    started = time.perf_counter()
    # TTY-gated live line on stderr; a no-op in CI and pipes, so stdout
    # and captured stderr stay byte-identical.
    meter = ProgressLine(0, label="fuzz cells")
    try:
        result = fuzzmod.fuzz_campaign(config, progress=meter.update)
    finally:
        meter.close()
    wall = round(time.perf_counter() - started, 3)

    summary = (f"fuzz: seed={config.seed} programs={len(result.programs)} "
               f"cpus={len(config.resolved_cpu_keys())} -> "
               f"{result.cells} cells ({result.skipped} skipped), "
               f"{len(result.violations)} violation(s) in {wall:.1f}s")
    lines = [summary]

    reproducers = []
    if result.violations:
        by_name = {p.name: p for p in result.programs}
        seen = set()
        for violation in result.violations:
            key = (violation.program, violation.cpu, violation.policy,
                   violation.oracle)
            if key in seen:
                continue
            seen.add(key)
            program = by_name[violation.program]
            try:
                minimized = fuzzmod.minimize_violation(
                    program, violation, config.seed)
            except ValueError:
                # The violation did not replay under the minimizer's
                # default repeats/trials; ship it unminimized.
                minimized = program
            path = fuzzmod.write_reproducer(args.out, minimized,
                                            violation, config.seed)
            reproducers.append(path)
            lines.extend(_fuzz_violation_lines([violation]))
            lines.append(f"    minimized to "
                         f"{minimized.instruction_count()} instruction(s) "
                         f"-> {path}")

    manifest = obs.build_manifest(
        command="fuzz", seed=config.seed,
        cpus=list(config.resolved_cpu_keys()),
        config={"programs": len(result.programs),
                "policies": list(config.policies),
                "trials": config.trials, "jobs": config.jobs},
        wall_time_s=wall)
    telemetry = dict(result.telemetry())
    telemetry["wall_s"] = wall
    _history_autorecord(args, {
        "values": {},
        "ledger": {},
        "telemetry": telemetry,
        "tolerance": {},
        "provenance": manifest.to_dict(),
    }, kind="fuzz")

    report = "\n".join(lines) + "\n"
    if args.out:
        # CI uploads --out as an artifact; always leave the summary
        # there so the directory exists even on a clean campaign.
        os.makedirs(args.out, exist_ok=True)
        with open(os.path.join(args.out, "summary.txt"), "w") as handle:
            handle.write(report)
        # Machine-readable twin: full violation records (problems dicts
        # and first-divergence data) plus the campaign shape.
        machine_summary = {
            "seed": config.seed,
            "programs": len(result.programs),
            "cpus": list(config.resolved_cpu_keys()),
            "policies": list(config.policies),
            "cells": result.cells,
            "skipped": result.skipped,
            "wall_s": wall,
            "violations": [v.to_dict() for v in result.violations],
            "reproducers": reproducers,
        }
        with open(os.path.join(args.out, "summary.json"), "w") as handle:
            json.dump(machine_summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if result.violations:
        sys.stdout.write(report)
        raise SystemExit(1)
    return report


def cmd_explain(args: argparse.Namespace) -> str:
    """First-divergence explainer: timeline-trace one parity cell and
    pinpoint the earliest microarchitectural event where two runs of the
    same cell disagree (structure, tsc, instruction index)."""
    import json
    from . import fuzz as fuzzmod
    from .core.stats import derive_seed
    if bool(args.replay) == bool(args.cell):
        raise SystemExit("explain: exactly one of --replay or --cell "
                         "is required")
    started = time.perf_counter()
    if args.replay:
        report = fuzzmod.explain_reproducer(args.replay)
        source = args.replay
    else:
        cpu_key, sep, policy = args.cell.partition(":")
        if not sep or not policy:
            raise SystemExit("explain: --cell takes CPU:POLICY "
                             "(e.g. broadwell:off)")
        program = fuzzmod.generate_program(
            derive_seed(args.seed, "fuzz-program", str(args.program)))
        report = fuzzmod.explain_cell(program, get_cpu(cpu_key), policy,
                                      args.seed, fault_op=args.fault)
        source = f"{program.name} on {args.cell}"
    wall = round(time.perf_counter() - started, 3)

    current = report.telemetry()["timeline"]
    against = None
    if args.against:
        from .obs.history import HistoryStore
        with HistoryStore(_history_path(args)) as store:
            run_id = store.resolve(args.against)
            stored_all = store.load_run(run_id)["telemetry"]
        stored = {name[len("timeline."):]: value
                  for name, value in stored_all.items()
                  if name.startswith("timeline.")}
        if not stored:
            raise SystemExit(f"explain: run {run_id} carries no "
                             f"timeline telemetry (not an explain run?)")
        mismatches = {}
        for name in sorted(set(stored) | set(current)):
            ours = current.get(name)
            theirs = stored.get(name)
            if ours != theirs:
                mismatches[name] = {"current": ours, "recorded": theirs}
        against = {"run": run_id, "matches": not mismatches,
                   "mismatches": mismatches}

    if args.trace_out:
        obs.write_chrome_trace(args.trace_out, obs.SpanTracer(),
                               timeline=report.timeline_base)

    manifest = obs.build_manifest(
        command="explain", seed=args.seed, cpus=[report.cpu],
        config={"policy": report.policy, "source": source,
                "fault_op": report.fault_op},
        wall_time_s=wall)
    _history_autorecord(args, {
        "values": {},
        "ledger": {},
        "telemetry": report.telemetry(),
        "tolerance": {},
        "provenance": manifest.to_dict(),
    }, kind="explain")

    if args.json:
        payload = report.to_dict()
        payload["source"] = source
        payload["against"] = against
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    lines = [f"explain: {source}",
             report.render(window=args.window).rstrip("\n")]
    if against is not None:
        if against["matches"]:
            lines.append(f"against run {against['run']}: event digest and "
                         f"per-structure counts match")
        else:
            lines.append(f"against run {against['run']}: "
                         f"{len(against['mismatches'])} mismatch(es)")
            for name, pair in sorted(against["mismatches"].items()):
                lines.append(f"  {name}: current={pair['current']} "
                             f"recorded={pair['recorded']}")
    if args.trace_out:
        lines.append(f"trace: wrote {report.timeline_base.total} timeline "
                     f"instants to {args.trace_out}")
    return "\n".join(lines) + "\n"


def cmd_all(args: argparse.Namespace) -> str:
    """Run every experiment, writing one file per artifact to --outdir."""
    os.makedirs(args.outdir, exist_ok=True)
    settings = _settings(args)
    cpus = list(all_cpus())

    def run_driver(label, fn, **kwargs):
        executor = _study_executor(args)
        results = fn(executor=executor, **kwargs)
        _report_executor(label, executor)
        return results

    artifacts = {
        "table1.txt": reporting.render_table1(),
        "table2.txt": reporting.render_table2(),
        "table3.txt": reporting.render_table3(
            [microbench.table3_row(cpu) for cpu in cpus]),
        "table4.txt": reporting.render_table4(
            {cpu.key: microbench.table4_value(cpu) for cpu in cpus}),
        "table5.txt": reporting.render_table5(
            [microbench.table5_row(cpu) for cpu in cpus]),
        "table6.txt": reporting.render_table6(
            {cpu.key: microbench.table6_value(cpu) for cpu in cpus}),
        "table7.txt": reporting.render_table7(
            {cpu.key: microbench.table7_value(cpu) for cpu in cpus}),
        "table8.txt": reporting.render_table8(
            {cpu.key: microbench.table8_value(cpu) for cpu in cpus}),
        "table9.txt": reporting.render_speculation_matrix(
            speculation_matrix(tuple(cpus), ibrs=False), ibrs=False),
        "table10.txt": reporting.render_speculation_matrix(
            speculation_matrix(tuple(cpus), ibrs=True), ibrs=True),
        "figure2.txt": reporting.render_figure2(
            run_driver("figure2", study.figure2, cpus=cpus,
                       settings=settings)),
        "figure3.txt": reporting.render_figure3(
            run_driver("figure3", study.figure3, cpus=cpus,
                       settings=settings)),
        "figure5.txt": reporting.render_figure5(
            run_driver("figure5", study.figure5, cpus=cpus,
                       settings=settings)),
        "vm.txt": cmd_vm(args),
        "parsec.txt": cmd_parsec(args),
        "bimodal.txt": reporting.render_entry_distribution(
            "cascade_lake",
            microbench.kernel_entry_latencies(get_cpu("cascade_lake"))),
        "summary.txt": cmd_summary(args),
    }
    for name, content in artifacts.items():
        path = os.path.join(args.outdir, name)
        with open(path, "w") as f:
            f.write(content)
    return f"wrote {len(artifacts)} artifacts to {args.outdir}\n"


def _add_executor_flags(p: argparse.ArgumentParser) -> None:
    """Execution-engine knobs shared by every study-driving subcommand."""
    p.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                   help="fan sweep cells out over N worker processes "
                        "(results are bit-identical to --jobs 1)")
    p.add_argument("--cache-dir", metavar="DIR", default=None,
                   help="persistent result cache location (default: "
                        "$SPECTRESIM_CACHE_DIR or ~/.cache/spectresim)")
    p.add_argument("--no-cache", action="store_true",
                   help="skip the persistent cell cache and checkpoints")
    p.add_argument("--resume", action="store_true",
                   help="resume an interrupted identical run from its "
                        "checkpoint before consulting the cache")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="spectresim",
        description="Reproduce the EuroSys '22 transient-execution "
                    "mitigation study on simulated CPUs.")
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="run the command under the span tracer and write a Chrome "
             "trace-event JSON (load in Perfetto) to PATH")
    parser.add_argument(
        "--engine", choices=list(blockengine.ENGINE_MODES),
        default=blockengine.default_engine(),
        help="instruction execution engine: 'block' (default) compiles "
             "hot sequences into batched cycle/counter/ledger deltas, "
             "'interp' interprets every instruction; both are "
             "bit-identical (see docs/performance.md)")
    parser.add_argument(
        "--history-db", metavar="PATH", default=None,
        help="run-history database (default: $SPECTRESIM_HISTORY_DB or "
             "benchmarks/baselines/history.db)")
    parser.add_argument(
        "--no-history", action="store_true",
        help="do not auto-record bench/check/profile runs into the "
             "run-history database")
    def _add_replicas_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--replicas", type=int, default=None, metavar="N",
            help="seeded machine replicas per cell, executed through the "
                 "batched SoA replica tier (default 1: the classic "
                 "single-run measurement, bit for bit)")

    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("cpus", help="list the modelled CPUs (Table 2)")

    p = sub.add_parser("table", help="render a paper table (1-10)")
    p.add_argument("number", type=int)
    p.add_argument("--iterations", type=int, default=1000)

    p = sub.add_parser("figure", help="regenerate a paper figure (2, 3, 5)")
    p.add_argument("number", type=int)
    p.add_argument("--fast", action="store_true")
    p.add_argument("--cpus", nargs="*")
    _add_replicas_flag(p)
    _add_executor_flags(p)

    p = sub.add_parser("vm", help="section 4.4 VM experiments")
    p.add_argument("--fast", action="store_true")
    p.add_argument("--cpus", nargs="*")
    _add_replicas_flag(p)
    _add_executor_flags(p)

    p = sub.add_parser("parsec", help="section 4.5 compute experiment")
    p.add_argument("--fast", action="store_true")
    p.add_argument("--cpus", nargs="*")
    _add_replicas_flag(p)
    _add_executor_flags(p)

    p = sub.add_parser("bimodal", help="section 6.2.2 eIBRS entry latency")
    p.add_argument("--cpu", default="cascade_lake")
    p.add_argument("--entries", type=int, default=200)

    p = sub.add_parser("attacks", help="attack demos with/without mitigations")
    p.add_argument("--cpu", default="broadwell")

    p = sub.add_parser("sweep", help="overhead curves and crossovers")
    p.add_argument("kind", choices=["opsize", "ssbd"])
    p.add_argument("--cpu", default="broadwell")
    p.add_argument("--threshold", type=float, default=5.0)

    p = sub.add_parser("export", help="emit one experiment as JSON")
    p.add_argument("experiment",
                   choices=["figure2", "figure3", "figure5",
                            "table9", "table10"])
    p.add_argument("--fast", action="store_true")
    p.add_argument("--cpus", nargs="*")
    _add_replicas_flag(p)
    _add_executor_flags(p)

    p = sub.add_parser("summary",
                       help="recompute the paper's section-8 answers")
    p.add_argument("--fast", action="store_true", default=True)

    p = sub.add_parser("regress", help="diff two exported JSON result files")
    p.add_argument("old")
    p.add_argument("new")
    p.add_argument("--tolerance", type=float, default=0.5)

    p = sub.add_parser(
        "profile",
        help="run a figure/table under the span tracer; export "
             "Perfetto trace, flamegraph, and metrics")
    p.add_argument("kind", choices=["figure", "table"])
    p.add_argument("number", type=int)
    p.add_argument("--fast", action="store_true")
    p.add_argument("--cpus", nargs="*")
    p.add_argument("--iterations", type=int, default=1000,
                   help="iterations for table microbenchmarks")
    p.add_argument("--trace-out", metavar="PATH", default=None,
                   help="write Chrome trace-event JSON here")
    p.add_argument("--flame-out", metavar="PATH", default=None,
                   help="write collapsed-stack flamegraph format here")
    p.add_argument("--metrics-out", metavar="PATH", default=None,
                   help="write the metrics registry as JSON here")
    p.add_argument("--ledger-out", metavar="PATH", default=None,
                   help="attribute every cycle with the ledger and write "
                        "the (layer, mitigation, primitive) report here")
    _add_replicas_flag(p)

    p = sub.add_parser(
        "bench",
        help="snapshot the study grid into a versioned BENCH_<n>.json "
             "(values + ledger rollups + provenance)")
    p.add_argument("--fast", action="store_true")
    p.add_argument("--cpus", nargs="*",
                   help="CPU keys to bench (default: pinned bench set)")
    p.add_argument("--drivers", nargs="*",
                   help="study drivers to snapshot (default: figure2 "
                        "figure3 figure5)")
    p.add_argument("--dir", default=os.path.join("benchmarks", "baselines"),
                   help="directory whose next free BENCH_<n>.json is used")
    p.add_argument("--out", metavar="PATH", default=None,
                   help="explicit output path (overrides --dir numbering)")
    _add_replicas_flag(p)
    _add_executor_flags(p)

    p = sub.add_parser(
        "check",
        help="re-run a baseline's grid and fail on noise-aware "
             "regressions, with per-mitigation ledger blame")
    p.add_argument("--against", metavar="BENCH.json", required=True,
                   help="baseline produced by 'spectresim bench'")
    _add_executor_flags(p)

    p = sub.add_parser(
        "history",
        help="run-history store: record runs, diff any two with ledger "
             "blame, render the HTML dashboard")
    p.add_argument("--db", metavar="PATH", default=None,
                   help="history database (overrides --history-db)")
    hsub = p.add_subparsers(dest="history_command", required=True)
    hp = hsub.add_parser("record",
                         help="append a bench payload as a new run")
    hp.add_argument("payload", metavar="BENCH.json",
                    help="payload produced by 'spectresim bench'")
    hp.add_argument("--kind", default="bench",
                    choices=["bench", "check", "profile", "study",
                             "fuzz", "explain"])
    hp.add_argument("--allow-dirty", action="store_true",
                    help="record even when the payload's code fingerprint "
                         "does not match the running code; the row is "
                         "flagged and annotated in trend lines")
    hsub.add_parser("list", help="list recorded runs")
    hp = hsub.add_parser(
        "diff",
        help="diff two runs cell-by-cell with a per-mitigation ledger "
             "blame waterfall (deltas sum exactly to each cell's TSC "
             "delta)")
    hp.add_argument("run_a", help="run id, 'latest', or 'prev'")
    hp.add_argument("run_b", nargs="?", default="latest",
                    help="run id, 'latest' (default), or 'prev'")
    hp = hsub.add_parser(
        "report", help="render the self-contained HTML dashboard")
    hp.add_argument("--out", metavar="PATH", default="history.html")
    hp.add_argument("--title", default="spectresim run history")
    hp = hsub.add_parser("gc", help="drop the oldest runs beyond --keep")
    hp.add_argument("--keep", type=int, required=True, metavar="N",
                    help="number of newest runs to retain")
    hp.add_argument("--dry-run", action="store_true",
                    help="list the runs gc would remove without "
                         "touching the database")

    p = sub.add_parser(
        "leakage",
        help="taint-oracle leakage surface: blocked/leaked matrix per "
             "CPU model and mitigation policy, or the raw event log")
    lsub = p.add_subparsers(dest="leakage_command", required=True)

    def _add_leakage_flags(lp: argparse.ArgumentParser) -> None:
        lp.add_argument("--policy", default="default",
                        choices=["default", "off", "ibrs"],
                        help="mitigation policy the probe grid runs under "
                             "(default: each part's Linux-default strategy)")
        lp.add_argument("--cpus", nargs="*",
                        help="CPU keys to probe (default: all modelled CPUs)")
        lp.add_argument("--trials", type=int, default=DEFAULT_TRIALS,
                        help="probe trials per (cpu, boundary) cell")
        lp.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")
        lp.add_argument("--max-events", type=int, default=200,
                        help="cap on raw events carried in the report")

    lp = lsub.add_parser("matrix",
                         help="cpu x train->victim boundary verdicts with "
                              "blocked-by mitigation attribution")
    _add_leakage_flags(lp)
    lp = lsub.add_parser("events", help="the leakage event flight record")
    _add_leakage_flags(lp)
    lp.add_argument("--trace-out", metavar="PATH", default=None,
                    help="also write the events as Perfetto instant "
                         "events (Chrome trace-event JSON) here")

    p = sub.add_parser(
        "fuzz",
        help="differential scenario fuzzer: random programs vs the "
             "engine-parity and leakage-contract oracles, with "
             "minimized replayable reproducers on violation")
    p.add_argument("--seed", type=int, default=1,
                   help="campaign base seed (corpus and every cell's "
                        "noise stream derive from it)")
    p.add_argument("--programs", type=_positive_int, default=None,
                   metavar="N",
                   help="corpus size (default: 25, or 6 with --smoke)")
    p.add_argument("--smoke", action="store_true",
                   help="CI-sized campaign: 6 programs over one part "
                        "per predictor family")
    p.add_argument("--cpus", nargs="*",
                   help="CPU keys to sweep (default: all modelled CPUs)")
    p.add_argument("--trials", type=_positive_int, default=2, metavar="N",
                   help="probe trials per (cell, scenario); the contract "
                        "is one-sided so few trials stay sound")
    p.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                   help="fan cells out over N worker processes "
                        "(verdicts are bit-identical to --jobs 1)")
    p.add_argument("--out", metavar="DIR", default="fuzz-out",
                   help="directory for minimized reproducers and the "
                        "campaign summary")
    p.add_argument("--replay", metavar="FILE", default=None,
                   help="re-run a reproducer file's pinned cell instead "
                        "of a fresh campaign; exits 1 if it still "
                        "violates")

    p = sub.add_parser(
        "explain",
        help="first-divergence explainer: timeline-trace a parity cell "
             "and pinpoint the earliest divergent microarchitectural "
             "event (structure, tsc, instruction index)")
    p.add_argument("--replay", metavar="FILE", default=None,
                   help="reproducer file from 'spectresim fuzz'; a "
                        "'# fault:' directive re-applies the injected "
                        "parity fault on the second traced run")
    p.add_argument("--cell", metavar="CPU:POLICY", default=None,
                   help="explain a generated cell (e.g. broadwell:off) "
                        "instead of a reproducer file")
    p.add_argument("--seed", type=int, default=1,
                   help="base seed for --cell program generation")
    p.add_argument("--program", type=int, default=0, metavar="N",
                   help="fuzz-corpus index of the --cell program")
    p.add_argument("--fault", metavar="OP", default=None,
                   help="inject the deterministic parity fault on OP "
                        "in the second traced run (--cell only)")
    p.add_argument("--against", metavar="RUN", default=None,
                   help="compare event digest and per-structure counts "
                        "against a recorded explain run (id, 'latest', "
                        "or 'prev')")
    p.add_argument("--window", type=_positive_int, default=8, metavar="N",
                   help="events of context on each side of the "
                        "divergence (default: 8)")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON instead of text")
    p.add_argument("--trace-out", metavar="PATH", default=None,
                   help="write the recorded event stream as Perfetto "
                        "instant events (Chrome trace-event JSON) here")

    p = sub.add_parser("all", help="run everything, write artifacts")
    p.add_argument("--outdir", default="results")
    p.add_argument("--fast", action="store_true")
    p.add_argument("--cpus", nargs="*")
    _add_executor_flags(p)

    return parser


_COMMANDS = {
    "cpus": cmd_cpus,
    "table": cmd_table,
    "figure": cmd_figure,
    "vm": cmd_vm,
    "parsec": cmd_parsec,
    "bimodal": cmd_bimodal,
    "attacks": cmd_attacks,
    "sweep": cmd_sweep,
    "export": cmd_export,
    "summary": cmd_summary,
    "regress": cmd_regress,
    "profile": cmd_profile,
    "bench": cmd_bench,
    "check": cmd_check,
    "history": cmd_history,
    "leakage": cmd_leakage,
    "fuzz": cmd_fuzz,
    "explain": cmd_explain,
    "all": cmd_all,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    blockengine.set_default_engine(args.engine)
    trace_path = getattr(args, "trace", None)
    if trace_path and args.command != "profile":
        tracer = obs.SpanTracer()
        started = time.perf_counter()
        with obs.use_tracer(tracer):
            output = _COMMANDS[args.command](args)
        manifest = obs.build_manifest(
            command=args.command,
            settings=_settings(args)
            if hasattr(args, "fast") else None,
            cpus=[cpu.key for cpu in _selected_cpus(args)],
            wall_time_s=round(time.perf_counter() - started, 3),
            sim_cycles=tracer.total_cycles(),
        )
        obs.write_chrome_trace(trace_path, tracer, provenance=manifest)
        output += (f"[trace] {len(tracer.spans)} spans, "
                   f"{100.0 * tracer.coverage():.1f}% cycle coverage -> "
                   f"{trace_path}\n")
    else:
        output = _COMMANDS[args.command](args)
    sys.stdout.write(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Live progress line for long grid sweeps (fuzz campaigns, studies).

One ``\\r``-rewritten stderr line — ``done/total``, percentage, rate and
ETA — rate-limited so tight loops don't spend their time printing.  The
line is **off** unless the stream is a TTY (CI logs and piped stderr
stay byte-stable), and callers pass it as the plain ``progress(done,
total)`` callback the sweep loops already accept.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO


class ProgressLine:
    """Rate-limited single-line progress meter.

    ``enabled=None`` (the default) resolves to ``stream.isatty()``: on a
    real terminal the line renders, under CI/pipes every method is a
    no-op.  ``clock`` is injectable for tests.
    """

    def __init__(self, total: int, label: str = "cells",
                 stream: Optional[TextIO] = None,
                 min_interval: float = 0.2,
                 enabled: Optional[bool] = None,
                 clock=time.monotonic) -> None:
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.clock = clock
        if enabled is None:
            isatty = getattr(self.stream, "isatty", None)
            enabled = bool(isatty()) if callable(isatty) else False
        self.enabled = enabled
        self.started = clock()
        self._last_emit: Optional[float] = None
        self._dirty = False

    def update(self, done: int, total: Optional[int] = None) -> None:
        """Record progress; repaints at most every ``min_interval`` s
        (the final ``done == total`` update always paints)."""
        if total is not None:
            self.total = total
        if not self.enabled:
            return
        now = self.clock()
        final = self.total > 0 and done >= self.total
        if (not final and self._last_emit is not None
                and now - self._last_emit < self.min_interval):
            self._dirty = True
            return
        self._last_emit = now
        self._dirty = False
        self.stream.write("\r" + self._render(done, now))
        self.stream.flush()

    def _render(self, done: int, now: float) -> str:
        elapsed = max(now - self.started, 1e-9)
        rate = done / elapsed
        parts = [f"[{self.label}] {done}/{self.total}"]
        if self.total > 0:
            parts.append(f"{100.0 * done / self.total:5.1f}%")
        parts.append(f"{rate:6.1f}/s")
        if rate > 0 and self.total > done:
            parts.append(f"eta {(self.total - done) / rate:5.1f}s")
        return "  ".join(parts)

    def close(self) -> None:
        """Finish the line: newline so subsequent output starts clean."""
        if not self.enabled:
            return
        if self._last_emit is not None or self._dirty:
            self.stream.write("\n")
            self.stream.flush()

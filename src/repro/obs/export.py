"""Trace exporters: Chrome trace-event JSON and collapsed flamegraph stacks.

Two interchange formats from one :class:`~repro.obs.spans.SpanTracer`:

* :func:`to_chrome_trace` emits the Trace Event Format (the JSON object
  form, ``{"traceEvents": [...]}``) that Perfetto and ``chrome://tracing``
  load directly.  Span timestamps are simulated cycles written into the
  microsecond fields, so one on-screen microsecond reads as one simulated
  cycle.
* :func:`to_collapsed_stacks` emits Brendan Gregg's collapsed-stack format
  (``a;b;c <self-cycles>`` per line) consumable by ``flamegraph.pl`` and
  speedscope.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .leakage import LeakageTracer
from .ledger import CycleLedger
from .provenance import RunManifest
from .spans import Span, SpanTracer
from .timeline import EventTimeline

__all__ = [
    "to_chrome_trace",
    "to_chrome_trace_json",
    "write_chrome_trace",
    "to_collapsed_stacks",
    "write_flamegraph",
]

#: Synthetic process/thread ids for the single simulated timeline.
TRACE_PID = 1
TRACE_TID = 1


def _span_event(span: Span) -> Dict[str, Any]:
    args: Dict[str, Any] = {str(k): v for k, v in span.attrs.items()}
    if span.counter_delta:
        args["counters"] = dict(span.counter_delta)
    args["self_cycles"] = span.self_cycles
    end = span.end if span.end is not None else span.start
    return {
        "name": span.name,
        "cat": span.name.split(".", 1)[0],
        "ph": "X",                      # complete event: begin + duration
        "ts": span.start,
        "dur": max(0, end - span.start),
        "pid": TRACE_PID,
        "tid": TRACE_TID,
        "args": args,
    }


def _ledger_counter_events(ledger: CycleLedger) -> List[Dict[str, Any]]:
    """Perfetto counter tracks from the cycle ledger.

    One ``ph: "C"`` sample per mitigation at the end of the timeline (the
    ledger is cumulative, not time-resolved), so Perfetto renders a
    per-mitigation cycle track next to the span timeline.
    """
    ts = ledger.total()
    return [
        {"name": f"cycles.{mitigation}", "ph": "C", "ts": ts,
         "pid": TRACE_PID, "tid": TRACE_TID,
         "args": {"cycles": cycles}}
        for mitigation, cycles in sorted(ledger.rollup("mitigation").items())
    ]


def _leakage_instant_events(leakage: LeakageTracer) -> List[Dict[str, Any]]:
    """Perfetto instant events from the leakage flight recorder.

    One global ``ph: "i"`` instant per filed :class:`LeakageEvent` at the
    event's simulated-cycle timestamp, so leaks line up against the span
    timeline and the per-mitigation counter tracks.
    """
    return [
        {"name": f"leak.{event.primitive}", "cat": "leakage",
         "ph": "i", "s": "g", "ts": event.tsc,
         "pid": TRACE_PID, "tid": TRACE_TID,
         "args": {"channel": event.channel, "boundary": event.boundary,
                  "policy": event.policy, "cpu": event.cpu,
                  "sink": event.sink, "mode": event.mode}}
        for event in leakage.events
    ]


def _timeline_instant_events(timeline: EventTimeline) -> List[Dict[str, Any]]:
    """Perfetto instant events from the microarchitectural timeline.

    One global ``ph: "i"`` instant per recorded :class:`TimelineEvent`
    at its simulated-cycle timestamp, named ``structure.action`` so
    Perfetto groups BTB/RSB/cache/TLB/store-buffer/MDS activity into
    filterable tracks alongside spans and leak instants.
    """
    return [
        {"name": event.path(), "cat": "timeline",
         "ph": "i", "s": "g", "ts": event.tsc,
         "pid": TRACE_PID, "tid": TRACE_TID,
         "args": {"key": event.key, "mode": event.mode,
                  "instr": event.instr, "seq": event.seq}}
        for event in timeline.events
    ]


def to_chrome_trace(tracer: SpanTracer,
                    provenance: Optional[RunManifest] = None,
                    ledger: Optional[CycleLedger] = None,
                    leakage: Optional[LeakageTracer] = None,
                    timeline: Optional[EventTimeline] = None
                    ) -> Dict[str, Any]:
    """The tracer's spans and instants as a Trace Event Format object."""
    events: List[Dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": TRACE_PID, "tid": TRACE_TID,
         "args": {"name": "spectresim"}},
        {"name": "thread_name", "ph": "M", "pid": TRACE_PID, "tid": TRACE_TID,
         "args": {"name": "simulated-cycles"}},
    ]
    events.extend(_span_event(span) for span in tracer.spans)
    events.extend(
        {"name": name, "cat": name.split(".", 1)[0], "ph": "i", "s": "g",
         "ts": ts, "pid": TRACE_PID, "tid": TRACE_TID,
         "args": {str(k): v for k, v in attrs.items()}}
        for ts, name, attrs in tracer.instants
    )
    other: Dict[str, Any] = {
        "total_cycles": tracer.total_cycles(),
        "attributed_cycles": tracer.attributed_cycles(),
        "coverage": tracer.coverage(),
        "metrics": tracer.metrics.collect(),
    }
    if ledger is not None:
        events.extend(_ledger_counter_events(ledger))
        other["ledger"] = ledger.state()
    if leakage is not None:
        events.extend(_leakage_instant_events(leakage))
        other["leakage"] = leakage.state()
    if timeline is not None:
        events.extend(_timeline_instant_events(timeline))
        other["timeline"] = timeline.stats()
    if provenance is not None:
        other["provenance"] = provenance.to_dict()
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": other,
    }


def to_chrome_trace_json(tracer: SpanTracer,
                         provenance: Optional[RunManifest] = None,
                         indent: Optional[int] = None,
                         ledger: Optional[CycleLedger] = None,
                         leakage: Optional[LeakageTracer] = None,
                         timeline: Optional[EventTimeline] = None) -> str:
    return json.dumps(to_chrome_trace(tracer, provenance, ledger=ledger,
                                      leakage=leakage, timeline=timeline),
                      indent=indent)


def write_chrome_trace(path: str, tracer: SpanTracer,
                       provenance: Optional[RunManifest] = None,
                       ledger: Optional[CycleLedger] = None,
                       leakage: Optional[LeakageTracer] = None,
                       timeline: Optional[EventTimeline] = None) -> None:
    with open(path, "w") as f:
        f.write(to_chrome_trace_json(tracer, provenance, ledger=ledger,
                                     leakage=leakage, timeline=timeline))


def to_collapsed_stacks(tracer: SpanTracer) -> str:
    """Collapsed-stack flamegraph text: ``root;child;leaf self_cycles``.

    Identical stacks are merged (their self-cycles summed), matching what
    ``stackcollapse-*`` scripts produce from sampled profiles.
    """
    weights: Dict[str, int] = {}
    for span in tracer.spans:
        self_cycles = span.self_cycles
        if self_cycles <= 0:
            continue
        stack = ";".join(span.path())
        weights[stack] = weights.get(stack, 0) + self_cycles
    lines = [f"{stack} {weight}" for stack, weight in sorted(weights.items())]
    return "\n".join(lines) + ("\n" if lines else "")


def write_flamegraph(path: str, tracer: SpanTracer) -> None:
    with open(path, "w") as f:
        f.write(to_collapsed_stacks(tracer))

"""Cycle-attribution ledger: where did every cycle go?

The paper's contribution is *attribution* — decomposing an end-to-end
slowdown into the individual mitigation primitives that caused it
(Figures 2-5, Tables 3-8).  The :class:`CycleLedger` makes that
decomposition auditable at simulation time: every cycle charged to a
machine's TSC is simultaneously filed under a hierarchical key

    (layer, mitigation, primitive)

e.g. ``kernel.entry/pti/mov_cr3`` for the CR3 swap KPTI adds to the
syscall entry path, or ``jsengine/spectre_v1/index_mask`` for the
conditional-mask stall Chrome's array loads pay.

Invariant
---------
The ledger hooks :meth:`PerfCounters.add_cycles` — the *only* place the
simulated TSC advances — so by construction

    sum(ledger entries) == sum of TSC deltas of every attached machine

:meth:`CycleLedger.verify` enforces this and raises
:class:`~repro.errors.LedgerInvariantError` on any mismatch (e.g. a
charge site that bypassed the hook).

Like the span tracer, the ledger is ambient: :func:`install_ledger` /
:func:`use_ledger` set a module-level current ledger which machines
adopt at construction.  When no ledger is installed the hot path costs
a single ``is None`` test.  Ledgers from executor workers merge into
the parent via :meth:`state` / :meth:`merge_state`, mirroring
``MetricsRegistry``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import LedgerInvariantError

#: Mitigation tag for work that is not attributable to any mitigation.
BASE = "base"

#: Primitive tag for cycles with no finer-grained attribution.
OTHER = "other"

#: The root layer: cycles charged outside any pushed layer scope.
ROOT_LAYER = "cpu"

#: Separator used in flattened ``layer/mitigation/primitive`` paths.
PATH_SEP = "/"

LedgerKey = Tuple[str, str, str]


def join_path(layer: str, mitigation: str, primitive: str) -> str:
    return PATH_SEP.join((layer, mitigation, primitive))


def split_path(path: str) -> LedgerKey:
    parts = path.split(PATH_SEP)
    if len(parts) != 3:
        raise LedgerInvariantError(
            f"malformed ledger path {path!r}: want layer/mitigation/primitive")
    return (parts[0], parts[1], parts[2])


class CycleLedger:
    """Hierarchical cycle accounting keyed by (layer, mitigation, primitive)."""

    def __init__(self) -> None:
        self._entries: Dict[LedgerKey, int] = {}
        self._layers: List[str] = [ROOT_LAYER]
        self._tag_mitigation: Optional[str] = None
        self._tag_primitive: Optional[str] = None
        self._splits: List[Tuple[int, str, str]] = []
        self._attached: List[object] = []  # PerfCounters, duck-typed on .tsc
        self._merged_expected = 0

    # ------------------------------------------------------------------
    # Charging — called from PerfCounters.add_cycles (the hot path).

    def charge(self, cycles: int) -> None:
        """File *cycles* under the current layer/tag, honouring splits."""
        layer = self._layers[-1]
        entries = self._entries
        if self._splits:
            for amount, mitigation, primitive in self._splits:
                amount = min(amount, cycles)
                if amount > 0:
                    key = (layer, mitigation, primitive)
                    entries[key] = entries.get(key, 0) + amount
                    cycles -= amount
            del self._splits[:]
        if cycles > 0:
            key = (layer,
                   self._tag_mitigation or BASE,
                   self._tag_primitive or OTHER)
            entries[key] = entries.get(key, 0) + cycles

    def set_tag(self, mitigation: Optional[str],
                primitive: Optional[str]) -> None:
        """Tag the next charge(s); cleared with :meth:`clear_tag`."""
        self._tag_mitigation = mitigation
        self._tag_primitive = primitive

    def clear_tag(self) -> None:
        self._tag_mitigation = None
        self._tag_primitive = None

    def add_split(self, cycles: int, mitigation: str, primitive: str) -> None:
        """Attribute *cycles* of the next charge to a different tag.

        Used for mixed-cost instructions: e.g. a load that pays an SSBD
        store-to-load-forwarding penalty charges the penalty to
        ``ssbd/stlf_block`` and only the architectural latency to the
        instruction's own tag.  Splits are consumed (and capped to the
        charged amount) by the next :meth:`charge`.
        """
        if cycles > 0:
            self._splits.append((cycles, mitigation, primitive))

    # ------------------------------------------------------------------
    # Layer scopes.

    def push_layer(self, name: str) -> None:
        self._layers.append(name)

    def pop_layer(self) -> None:
        if len(self._layers) <= 1:
            raise LedgerInvariantError("ledger layer stack underflow")
        self._layers.pop()

    @contextmanager
    def layer(self, name: str) -> Iterator["CycleLedger"]:
        self.push_layer(name)
        try:
            yield self
        finally:
            self.pop_layer()

    @property
    def current_layer(self) -> str:
        return self._layers[-1]

    # ------------------------------------------------------------------
    # Invariant.

    def attach(self, counters: object) -> None:
        """Register a machine's PerfCounters for invariant checking."""
        self._attached.append(counters)

    def total(self) -> int:
        return sum(self._entries.values())

    def expected_total(self) -> int:
        """TSC cycles every attached machine charged, plus merged workers."""
        return sum(c.tsc for c in self._attached) + self._merged_expected

    def verify(self) -> int:
        """Check sum(entries) == sum(TSC deltas); return the total.

        Raises :class:`LedgerInvariantError` on mismatch — which means a
        charge site advanced the TSC without going through
        ``PerfCounters.add_cycles`` on an attached counter file.
        """
        total = self.total()
        expected = self.expected_total()
        if total != expected:
            raise LedgerInvariantError(
                f"ledger invariant violated: attributed {total} cycles but "
                f"attached machines charged {expected} "
                f"(drift {total - expected:+d})")
        return total

    # ------------------------------------------------------------------
    # Merge (mirrors MetricsRegistry.state/merge_state).

    def state(self) -> Dict[str, object]:
        """Lossless dump for cross-process transport."""
        return {
            "entries": {join_path(*key): value
                        for key, value in sorted(self._entries.items())},
            "expected": self.expected_total(),
        }

    def merge_state(self, state: Dict[str, object]) -> None:
        """Fold a worker ledger's :meth:`state` into this one."""
        for path, value in state.get("entries", {}).items():
            key = split_path(path)
            self._entries[key] = self._entries.get(key, 0) + int(value)
        self._merged_expected += int(state.get("expected", 0))

    # ------------------------------------------------------------------
    # Views.

    def paths(self) -> Dict[str, int]:
        """Flattened ``layer/mitigation/primitive -> cycles`` mapping."""
        return {join_path(*key): value
                for key, value in sorted(self._entries.items())}

    def rollup(self, by: str = "mitigation") -> Dict[str, int]:
        """Aggregate entries by ``"layer"``, ``"mitigation"``, or ``"primitive"``."""
        index = {"layer": 0, "mitigation": 1, "primitive": 2}.get(by)
        if index is None:
            raise ValueError(f"unknown rollup axis {by!r}")
        out: Dict[str, int] = {}
        for key, value in self._entries.items():
            out[key[index]] = out.get(key[index], 0) + value
        return dict(sorted(out.items(), key=lambda kv: -kv[1]))

    def mitigation_cycles(self) -> Dict[str, int]:
        """Per-mitigation cycle totals, excluding untagged base work."""
        return {name: cycles for name, cycles in self.rollup("mitigation").items()
                if name != BASE}

    # ------------------------------------------------------------------
    # Rendering.

    def render_tree(self) -> str:
        """Terminal tree: layers, then mitigation/primitive leaves."""
        total = self.total()
        lines = [f"cycle ledger — {total:,} cycles attributed"]
        if not total:
            return "\n".join(lines) + "\n"
        by_layer: Dict[str, Dict[Tuple[str, str], int]] = {}
        for (layer, mitigation, primitive), value in self._entries.items():
            by_layer.setdefault(layer, {})[(mitigation, primitive)] = value
        layers = sorted(by_layer.items(),
                        key=lambda kv: -sum(kv[1].values()))
        for layer, leaves in layers:
            layer_total = sum(leaves.values())
            lines.append(f"{layer:<40} {layer_total:>14,}  "
                         f"{100.0 * layer_total / total:5.1f}%")
            ordered = sorted(leaves.items(), key=lambda kv: -kv[1])
            for i, ((mitigation, primitive), value) in enumerate(ordered):
                branch = "└─" if i == len(ordered) - 1 else "├─"
                label = f"{branch} {mitigation}/{primitive}"
                lines.append(f"{label:<40} {value:>14,}  "
                             f"{100.0 * value / total:5.1f}%")
        return "\n".join(lines) + "\n"

    def render_markdown(self) -> str:
        """Markdown table of every (layer, mitigation, primitive) entry."""
        total = self.total()
        lines = ["| layer | mitigation | primitive | cycles | share |",
                 "| --- | --- | --- | ---: | ---: |"]
        ordered = sorted(self._entries.items(), key=lambda kv: -kv[1])
        for (layer, mitigation, primitive), value in ordered:
            share = 100.0 * value / total if total else 0.0
            lines.append(f"| {layer} | {mitigation} | {primitive} "
                         f"| {value} | {share:.2f}% |")
        lines.append(f"| **total** |  |  | **{total}** | 100.00% |")
        return "\n".join(lines) + "\n"

    def report(self) -> str:
        return self.render_tree()


# ----------------------------------------------------------------------
# Ambient current ledger (mirrors obs.spans).

_current: Optional[CycleLedger] = None


def current_ledger() -> Optional[CycleLedger]:
    """The ambient ledger new machines adopt, or None when accounting is off."""
    return _current


def install_ledger(ledger: Optional[CycleLedger]) -> Optional[CycleLedger]:
    """Install *ledger* as the ambient ledger; returns the previous one."""
    global _current
    previous = _current
    _current = ledger
    return previous


@contextmanager
def use_ledger(ledger: Optional[CycleLedger]) -> Iterator[Optional[CycleLedger]]:
    previous = install_ledger(ledger)
    try:
        yield ledger
    finally:
        install_ledger(previous)


class _NullScope:
    """Shared no-op context manager for when no ledger is active."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SCOPE = _NullScope()


def ledger_scope(ledger: Optional[CycleLedger], name: str):
    """Layer scope that is free when *ledger* is None."""
    if ledger is None:
        return _NULL_SCOPE
    return ledger.layer(name)

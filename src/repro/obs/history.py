"""Run-history store and the unified diff/attribution engine.

The paper is a *longitudinal* study: its headline figures plot how
mitigation cost evolves across kernel versions and microarchitectures.
This module gives the simulator the same posture toward its own results.
A :class:`HistoryStore` is a SQLite database that every bench/check/
profile run appends one row-set to:

* ``runs`` — one row per recorded run: provenance manifest, code
  fingerprint, schema version, wall time, simulated cycles;
* ``cells`` — every study value the run produced (per cell, per
  mitigation knob) with its propagated measurement uncertainty;
* ``ledger`` — the deterministic per-CPU cycle-attribution rollups
  (``layer/mitigation/primitive -> cycles``);
* ``telemetry`` — the simulator's *own* performance: cells/sec, engine
  and cache hit rates, host wall-clock per phase;
* ``leakage`` — the taint oracle's probe grid (schema v2): one row per
  (cpu, primitive, boundary, policy) cell with its blocked/leaked
  verdict, event count and blocked-by attribution.

On top of the store sits the **diff engine** shared by every comparison
path in the repo: ``spectresim check`` (:mod:`repro.obs.baseline`
delegates here), ``spectresim regress`` (:mod:`repro.core.regression`
wraps :func:`diff_values`), and ``spectresim history diff``.  Value
comparisons are noise-aware — a delta is significant only beyond
``sigma_multiplier × hypot(u_old, u_new) + floor`` — while ledger entries
are deterministic integers diffed exactly.  Each changed ledger cell is
explained as a per-mitigation **blame waterfall** whose steps sum
*exactly* to the cell's TSC delta (an invariant this module enforces,
inherited from the ledger's own sum-to-TSC construction).

Fingerprint hygiene: recording a payload whose ``code_fingerprint`` does
not match the running code raises :class:`~repro.errors.HistoryError`
unless ``allow_dirty`` is set, in which case the row is flagged and the
dashboard annotates it — a trend line must never silently mix results
from different code.
"""

from __future__ import annotations

import json
import math
import os
import sqlite3
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import HistoryError, LedgerInvariantError
from .ledger import split_path
from .provenance import code_fingerprint

__all__ = [
    "DEFAULT_LEDGER_REL_TOL",
    "DEFAULT_MIN_PERCENT_POINTS",
    "DEFAULT_SIGMA_MULTIPLIER",
    "CellDelta",
    "HistoryStore",
    "LedgerDrift",
    "RunDiff",
    "RunInfo",
    "ValueDelta",
    "blame_paths",
    "cell_waterfall",
    "default_history_db",
    "diff_ledgers",
    "diff_payloads",
    "diff_values",
    "render_diff",
]

#: On-disk store schema version (bump on incompatible layout changes).
#: v2 adds the ``leakage`` table (per-run blocked/leaked probe cells);
#: v1 stores migrate in place on open — the new table is simply created
#: and existing rows are untouched.
SCHEMA_VERSION = 2

#: Noise tolerance defaults shared with the bench gate: a value regresses
#: when it worsens by more than multiplier × hypot(u_old, u_new) + floor.
DEFAULT_SIGMA_MULTIPLIER = 3.0
DEFAULT_MIN_PERCENT_POINTS = 0.25

#: Ledger entries are deterministic; any relative drift beyond this is
#: reported (0.0 = exact match required).
DEFAULT_LEDGER_REL_TOL = 0.0

#: JS knobs do not share a name with their ledger mitigation tag (the
#: taxonomy files them under spectre_v1 primitives, per the paper's
#: section 4.3); map knob -> ledger primitive for blame matching.
JS_KNOB_PRIMITIVES = {
    "js_index_masking": "index_mask",
    "js_object_guards": "object_guard",
    "js_other": "pointer_poison",
}


def default_history_db() -> str:
    """``$SPECTRESIM_HISTORY_DB`` or the committed repo fixture."""
    return (os.environ.get("SPECTRESIM_HISTORY_DB")
            or os.path.join("benchmarks", "baselines", "history.db"))


# --------------------------------------------------------------------------- #
# The diff engine (pure functions; baseline.py and regression.py wrap these)
# --------------------------------------------------------------------------- #

@dataclass
class ValueDelta:
    """One compared cell value."""

    key: Any
    old: float
    new: float
    allowed: float
    blame: List[str] = field(default_factory=list)

    @property
    def delta(self) -> float:
        return self.new - self.old


@dataclass
class LedgerDrift:
    """One drifted ledger path on one CPU."""

    cpu: str
    path: str
    old: int
    new: int

    @property
    def delta(self) -> int:
        return self.new - self.old

    def describe(self) -> str:
        pct = (100.0 * self.delta / self.old) if self.old else float("inf")
        return (f"{self.cpu}:{self.path} {self.old:,} -> {self.new:,} cycles "
                f"({self.delta:+,}, {pct:+.1f}%)")


@dataclass
class CellDelta:
    """One changed ledger cell: a per-mitigation blame waterfall.

    ``steps`` holds the (mitigation, cycle delta) decomposition, largest
    magnitude first.  Because every ledger path belongs to exactly one
    mitigation and the totals are entry sums, the steps sum *exactly* to
    ``delta`` — integer arithmetic, no residual; :func:`cell_waterfall`
    raises :class:`~repro.errors.LedgerInvariantError` otherwise.
    """

    cpu: str
    old_total: int
    new_total: int
    steps: List[Tuple[str, int]] = field(default_factory=list)
    drifts: List[LedgerDrift] = field(default_factory=list)

    @property
    def delta(self) -> int:
        return self.new_total - self.old_total


@dataclass
class ValuesDiff:
    """Outcome of a noise-aware value-map comparison."""

    regressions: List[ValueDelta] = field(default_factory=list)
    improvements: List[ValueDelta] = field(default_factory=list)
    missing: List[Any] = field(default_factory=list)
    new_keys: List[Any] = field(default_factory=list)
    compared: int = 0


@dataclass
class RunDiff:
    """Everything a run-vs-run comparison found.

    The value/ledger regression fields match what the bench gate's
    ``check`` historically reported (``baseline.BaselineDiff`` is now an
    alias of this class); ``cells`` adds the per-CPU blame waterfalls.
    """

    regressions: List[ValueDelta] = field(default_factory=list)
    improvements: List[ValueDelta] = field(default_factory=list)
    ledger_regressions: List[LedgerDrift] = field(default_factory=list)
    ledger_improvements: List[LedgerDrift] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    new_keys: List[str] = field(default_factory=list)
    compared: int = 0
    cells: List[CellDelta] = field(default_factory=list)
    fingerprints: Tuple[str, str] = ("", "")

    @property
    def failed(self) -> bool:
        return bool(self.regressions or self.ledger_regressions
                    or self.missing)

    @property
    def fingerprint_changed(self) -> bool:
        old_fp, new_fp = self.fingerprints
        return bool(old_fp or new_fp) and old_fp != new_fp


def diff_values(old: Mapping[Any, Tuple[float, float]],
                new: Mapping[Any, Tuple[float, float]],
                sigma_multiplier: float = DEFAULT_SIGMA_MULTIPLIER,
                floor: float = DEFAULT_MIN_PERCENT_POINTS) -> ValuesDiff:
    """Noise-aware comparison of two ``key -> (value, uncertainty)`` maps.

    Keys may be any sortable type (the bench gate uses strings; the
    regression differ uses tuples).  A key moves into ``regressions`` /
    ``improvements`` only when the delta exceeds
    ``sigma_multiplier × hypot(u_old, u_new) + floor``.
    """
    diff = ValuesDiff()
    diff.new_keys = sorted(set(new) - set(old))
    for key in sorted(old):
        record = new.get(key)
        if record is None:
            diff.missing.append(key)
            continue
        diff.compared += 1
        old_v, old_u = old[key]
        new_v, new_u = record
        allowed = sigma_multiplier * math.hypot(old_u, new_u) + floor
        delta = ValueDelta(key=key, old=float(old_v), new=float(new_v),
                           allowed=allowed)
        if new_v - old_v > allowed:
            diff.regressions.append(delta)
        elif old_v - new_v > allowed:
            diff.improvements.append(delta)
    diff.regressions.sort(key=lambda d: -(d.delta - d.allowed))
    return diff


def diff_ledgers(old_ledgers: Mapping[str, Any],
                 new_ledgers: Mapping[str, Any],
                 rel_tol: float = DEFAULT_LEDGER_REL_TOL) -> List[LedgerDrift]:
    """Per-path drifts across two ``cpu -> {"entries": {...}}`` rollups."""
    drifts: List[LedgerDrift] = []
    for cpu in sorted(old_ledgers):
        old_entries = old_ledgers[cpu].get("entries", {})
        new_entries = new_ledgers.get(cpu, {}).get("entries", {})
        for path in sorted(set(old_entries) | set(new_entries)):
            old_v = int(old_entries.get(path, 0))
            new_v = int(new_entries.get(path, 0))
            if old_v == new_v:
                continue
            scale = max(abs(old_v), 1)
            if abs(new_v - old_v) / scale <= rel_tol:
                continue
            drifts.append(LedgerDrift(cpu=cpu, path=path, old=old_v,
                                      new=new_v))
    return drifts


def cell_waterfall(cpu: str,
                   old_entries: Mapping[str, int],
                   new_entries: Mapping[str, int],
                   drifts: Sequence[LedgerDrift] = ()) -> CellDelta:
    """Decompose one cell's TSC delta into per-mitigation steps.

    The steps sum exactly to ``new_total - old_total`` by construction
    (every path belongs to exactly one mitigation); the closing invariant
    check turns any future bookkeeping slip into a loud failure rather
    than a silently wrong waterfall.
    """
    old_total = sum(int(v) for v in old_entries.values())
    new_total = sum(int(v) for v in new_entries.values())
    by_mitigation: Dict[str, int] = {}
    for path in sorted(set(old_entries) | set(new_entries)):
        _layer, mitigation, _primitive = split_path(path)
        delta = int(new_entries.get(path, 0)) - int(old_entries.get(path, 0))
        if delta:
            by_mitigation[mitigation] = by_mitigation.get(mitigation, 0) + delta
    steps = sorted(((m, d) for m, d in by_mitigation.items() if d),
                   key=lambda kv: (-abs(kv[1]), kv[0]))
    if sum(d for _m, d in steps) != new_total - old_total:
        raise LedgerInvariantError(
            f"waterfall for cell {cpu!r} does not balance: steps sum to "
            f"{sum(d for _m, d in steps):+d} but the cell moved "
            f"{new_total - old_total:+d} cycles")
    return CellDelta(cpu=cpu, old_total=old_total, new_total=new_total,
                     steps=steps, drifts=list(drifts))


def _knob_of(key: str) -> str:
    return key.rsplit(":", 1)[1] if ":" in key else key


def blame_paths(key: str, drifts: Sequence[LedgerDrift]) -> List[str]:
    """Ledger drift paths that plausibly explain a regressed value.

    The value key's knob suffix names a mitigation; drifted paths tagged
    with that mitigation (or, for the JS knobs, the matching primitive)
    are the blame.  Aggregate keys (total/other/overhead) blame every
    drifted path.
    """
    knob = _knob_of(str(key))
    selected: List[LedgerDrift] = []
    for drift in drifts:
        _layer, mitigation, primitive = drift.path.split("/")
        if knob in ("total", "other", "overhead"):
            selected.append(drift)
        elif mitigation == knob:
            selected.append(drift)
        elif JS_KNOB_PRIMITIVES.get(knob) == primitive:
            selected.append(drift)
    selected.sort(key=lambda d: -abs(d.delta))
    return [d.describe() for d in selected]


def diff_payloads(old: Mapping[str, Any], new: Mapping[str, Any],
                  tolerance: Optional[Mapping[str, float]] = None) -> RunDiff:
    """Diff two bench-shaped payloads with the *old* payload's tolerances.

    This is the engine behind ``spectresim check`` and ``spectresim
    history diff``: noise-aware value deltas with ledger blame, exact
    per-path ledger drifts, and a blame waterfall for every changed cell.
    """
    tolerance = dict(tolerance if tolerance is not None
                     else old.get("tolerance", {}))
    multiplier = tolerance.get("sigma_multiplier", DEFAULT_SIGMA_MULTIPLIER)
    floor = tolerance.get("min_percent_points", DEFAULT_MIN_PERCENT_POINTS)
    ledger_rel_tol = tolerance.get("ledger_rel_tol", DEFAULT_LEDGER_REL_TOL)

    diff = RunDiff()
    old_fp = str((old.get("provenance") or {}).get("code_fingerprint") or "")
    new_fp = str((new.get("provenance") or {}).get("code_fingerprint") or "")
    diff.fingerprints = (old_fp, new_fp)

    # Ledger drifts first: they feed the blame report for value deltas.
    old_ledgers = old.get("ledger", {})
    new_ledgers = new.get("ledger", {})
    drifts = diff_ledgers(old_ledgers, new_ledgers, rel_tol=ledger_rel_tol)
    for drift in drifts:
        if drift.delta > 0:
            diff.ledger_regressions.append(drift)
        else:
            diff.ledger_improvements.append(drift)

    # One waterfall per changed cell (a CPU whose ledger moved at all).
    for cpu in sorted(set(old_ledgers) | set(new_ledgers)):
        old_entries = old_ledgers.get(cpu, {}).get("entries", {})
        new_entries = new_ledgers.get(cpu, {}).get("entries", {})
        cell_drifts = [d for d in drifts if d.cpu == cpu]
        if old_entries == new_entries and not cell_drifts:
            continue
        diff.cells.append(cell_waterfall(cpu, old_entries, new_entries,
                                         drifts=cell_drifts))

    old_values = {key: (float(rec["value"]),
                        float(rec.get("uncertainty", 0.0)))
                  for key, rec in old.get("values", {}).items()}
    new_values = {key: (float(rec["value"]),
                        float(rec.get("uncertainty", 0.0)))
                  for key, rec in new.get("values", {}).items()}
    values = diff_values(old_values, new_values,
                         sigma_multiplier=multiplier, floor=floor)
    diff.regressions = values.regressions
    diff.improvements = values.improvements
    diff.missing = values.missing
    diff.new_keys = values.new_keys
    diff.compared = values.compared
    for delta in diff.regressions:
        delta.blame = blame_paths(delta.key, drifts)
    return diff


def render_diff(diff: RunDiff, label_a: str = "old",
                label_b: str = "new") -> str:
    """Full text report: waterfalls per cell, then value deltas."""
    lines = [f"diff {label_a} -> {label_b}"]
    if diff.fingerprint_changed:
        old_fp, new_fp = diff.fingerprints
        lines.append(f"  code fingerprint changed: "
                     f"{old_fp or '<missing>'} -> {new_fp or '<missing>'}")
    for cell in diff.cells:
        lines.append(
            f"CELL {cell.cpu}: {cell.old_total:,} -> {cell.new_total:,} "
            f"cycles ({cell.delta:+,})")
        for mitigation, delta in cell.steps:
            lines.append(f"  {mitigation:<16} {delta:+14,}")
        lines.append(f"  {'= total':<16} {cell.delta:+14,} (exact)")
        for drift in sorted(cell.drifts, key=lambda d: -abs(d.delta))[:5]:
            lines.append(f"  path: {drift.describe()}")
    for delta in diff.regressions:
        lines.append(
            f"REGRESSION {delta.key}: {delta.old:+.2f} -> {delta.new:+.2f} "
            f"({delta.delta:+.2f}, allowed +/-{delta.allowed:.2f})")
        for blame in delta.blame:
            lines.append(f"  blame: {blame}")
    for delta in diff.improvements:
        lines.append(
            f"improvement {delta.key}: {delta.old:+.2f} -> {delta.new:+.2f} "
            f"({delta.delta:+.2f})")
    for key in diff.missing:
        lines.append(f"MISSING {key}: present in {label_a}, absent in "
                     f"{label_b}")
    for key in diff.new_keys:
        lines.append(f"new {key}: only in {label_b}")
    lines.append(
        f"{diff.compared} values compared: {len(diff.regressions)} "
        f"regressions, {len(diff.improvements)} improvements, "
        f"{len(diff.cells)} changed cells, {len(diff.missing)} missing")
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------------- #
# The SQLite store
# --------------------------------------------------------------------------- #

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    created_at  TEXT NOT NULL DEFAULT '',
    command     TEXT NOT NULL DEFAULT '',
    kind        TEXT NOT NULL DEFAULT 'bench',
    fingerprint TEXT NOT NULL DEFAULT '',
    version     TEXT NOT NULL DEFAULT '',
    seed        INTEGER,
    dirty       INTEGER NOT NULL DEFAULT 0,
    wall_time_s REAL,
    sim_cycles  INTEGER,
    tolerance   TEXT NOT NULL DEFAULT '{}',
    manifest    TEXT NOT NULL DEFAULT '{}'
);
CREATE TABLE IF NOT EXISTS cells (
    run_id      INTEGER NOT NULL,
    key         TEXT NOT NULL,
    value       REAL NOT NULL,
    uncertainty REAL NOT NULL DEFAULT 0.0,
    PRIMARY KEY (run_id, key)
);
CREATE TABLE IF NOT EXISTS ledger (
    run_id INTEGER NOT NULL,
    cpu    TEXT NOT NULL,
    path   TEXT NOT NULL,
    cycles INTEGER NOT NULL,
    PRIMARY KEY (run_id, cpu, path)
);
CREATE TABLE IF NOT EXISTS telemetry (
    run_id INTEGER NOT NULL,
    name   TEXT NOT NULL,
    value  REAL NOT NULL,
    PRIMARY KEY (run_id, name)
);
CREATE TABLE IF NOT EXISTS leakage (
    run_id     INTEGER NOT NULL,
    cpu        TEXT NOT NULL,
    primitive  TEXT NOT NULL,
    boundary   TEXT NOT NULL,
    policy     TEXT NOT NULL,
    blocked    INTEGER NOT NULL,
    events     INTEGER NOT NULL DEFAULT 0,
    blocked_by TEXT NOT NULL DEFAULT '',
    PRIMARY KEY (run_id, cpu, primitive, boundary, policy)
);
CREATE INDEX IF NOT EXISTS cells_by_key   ON cells (key, run_id);
CREATE INDEX IF NOT EXISTS ledger_by_cpu  ON ledger (cpu, path, run_id);
CREATE INDEX IF NOT EXISTS leakage_by_cpu ON leakage (cpu, boundary, run_id);
"""

#: Schema versions :class:`HistoryStore` upgrades in place on open.
#: v1 -> v2 is purely additive (the ``leakage`` table), so the migration
#: is the ``CREATE TABLE IF NOT EXISTS`` that already ran plus a version
#: stamp.
MIGRATABLE_VERSIONS = (1,)


@dataclass(frozen=True)
class RunInfo:
    """One row of ``history list``."""

    id: int
    created_at: str
    command: str
    kind: str
    fingerprint: str
    version: str
    seed: Optional[int]
    dirty: bool
    wall_time_s: Optional[float]
    sim_cycles: Optional[int]
    values: int
    ledger_cycles: int


def _flatten_telemetry(obj: Any, prefix: str = "",
                       out: Optional[Dict[str, float]] = None) -> Dict[str, float]:
    """``{"engine": {"block_hits": 3}} -> {"engine.block_hits": 3.0}``.

    Non-numeric leaves are dropped: telemetry rows are strictly numeric
    time series.
    """
    if out is None:
        out = {}
    if isinstance(obj, Mapping):
        for key in sorted(obj):
            _flatten_telemetry(obj[key], f"{prefix}.{key}" if prefix else
                               str(key), out)
    elif isinstance(obj, bool):
        pass
    elif isinstance(obj, (int, float)):
        out[prefix] = float(obj)
    return out


class HistoryStore:
    """SQLite-backed, append-only store of run results over time."""

    def __init__(self, path: str) -> None:
        self.path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._db = sqlite3.connect(path)
        self._db.executescript(_SCHEMA)
        row = self._db.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'").fetchone()
        if row is None:
            self._db.execute(
                "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),))
            self._db.commit()
        elif int(row[0]) != SCHEMA_VERSION:
            version = int(row[0])
            if version in MIGRATABLE_VERSIONS:
                # Additive migration: the executescript above already
                # created any missing tables/indexes; stamp the version.
                self._db.execute(
                    "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                    (str(SCHEMA_VERSION),))
                self._db.commit()
            else:
                self._db.close()
                raise HistoryError(
                    f"history db {path!r} has schema v{version}, this build "
                    f"reads v{SCHEMA_VERSION}")

    # -- lifecycle --------------------------------------------------------- #

    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> "HistoryStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __len__(self) -> int:
        return int(self._db.execute("SELECT COUNT(*) FROM runs").fetchone()[0])

    # -- recording --------------------------------------------------------- #

    def record_payload(self, payload: Mapping[str, Any],
                       command: Optional[str] = None,
                       kind: str = "bench",
                       allow_dirty: bool = False) -> int:
        """Append one bench-shaped payload as a new run; returns its id.

        Refuses payloads whose provenance fingerprint differs from the
        running code unless ``allow_dirty`` — mixing fingerprints in one
        trend line without a flag would make every trend unreadable.
        Dirty rows are recorded with ``dirty=1`` and annotated by the
        dashboard.
        """
        manifest = dict(payload.get("provenance") or {})
        fingerprint = str(manifest.get("code_fingerprint") or "")
        dirty = fingerprint != code_fingerprint()
        if dirty and not allow_dirty:
            raise HistoryError(
                f"payload code fingerprint {fingerprint or '<missing>'} does "
                f"not match the running code ({code_fingerprint()}); "
                f"recording it would mix rows from different code in one "
                f"trend line — pass --allow-dirty to record it flagged")
        seed = manifest.get("seed")
        cursor = self._db.execute(
            "INSERT INTO runs (created_at, command, kind, fingerprint, "
            "version, seed, dirty, wall_time_s, sim_cycles, tolerance, "
            "manifest) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (str(manifest.get("created_at") or ""),
             str(command if command is not None
                 else manifest.get("command") or ""),
             kind,
             fingerprint,
             str(manifest.get("version") or ""),
             int(seed) if seed is not None else None,
             1 if dirty else 0,
             manifest.get("wall_time_s"),
             manifest.get("sim_cycles"),
             json.dumps(payload.get("tolerance", {}), sort_keys=True),
             json.dumps(manifest, sort_keys=True)))
        run_id = int(cursor.lastrowid)
        self._db.executemany(
            "INSERT INTO cells (run_id, key, value, uncertainty) "
            "VALUES (?, ?, ?, ?)",
            [(run_id, key, float(rec["value"]),
              float(rec.get("uncertainty", 0.0)))
             for key, rec in sorted(payload.get("values", {}).items())])
        self._db.executemany(
            "INSERT INTO ledger (run_id, cpu, path, cycles) "
            "VALUES (?, ?, ?, ?)",
            [(run_id, cpu, path, int(cycles))
             for cpu, roll in sorted(payload.get("ledger", {}).items())
             for path, cycles in sorted(roll.get("entries", {}).items())])
        self._db.executemany(
            "INSERT INTO telemetry (run_id, name, value) VALUES (?, ?, ?)",
            sorted((run_id, name, value) for name, value in
                   _flatten_telemetry(payload.get("telemetry", {})).items()))
        leakage = payload.get("leakage") or {}
        policy = str(leakage.get("policy") or "default")
        self._db.executemany(
            "INSERT INTO leakage (run_id, cpu, primitive, boundary, policy, "
            "blocked, events, blocked_by) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            [(run_id, cpu,
              str(cell.get("primitive", "spectre_btb")),
              boundary, policy,
              0 if cell.get("leaked") else 1,
              int(cell.get("events", 0)),
              ",".join(cell.get("blocked_by", [])))
             for cpu, row in sorted((leakage.get("matrix") or {}).items())
             if row is not None
             for boundary, cell in sorted(row.items())])
        self._db.commit()
        return run_id

    # -- queries ----------------------------------------------------------- #

    def runs(self) -> List[RunInfo]:
        """Every recorded run, oldest first."""
        rows = self._db.execute(
            "SELECT r.id, r.created_at, r.command, r.kind, r.fingerprint, "
            "r.version, r.seed, r.dirty, r.wall_time_s, r.sim_cycles, "
            "(SELECT COUNT(*) FROM cells c WHERE c.run_id = r.id), "
            "(SELECT COALESCE(SUM(cycles), 0) FROM ledger l "
            " WHERE l.run_id = r.id) "
            "FROM runs r ORDER BY r.id").fetchall()
        return [RunInfo(id=row[0], created_at=row[1], command=row[2],
                        kind=row[3], fingerprint=row[4], version=row[5],
                        seed=row[6], dirty=bool(row[7]), wall_time_s=row[8],
                        sim_cycles=row[9], values=row[10],
                        ledger_cycles=row[11])
                for row in rows]

    def run_info(self, run_id: int) -> RunInfo:
        for info in self.runs():
            if info.id == run_id:
                return info
        raise HistoryError(f"no run {run_id} in {self.path!r}")

    def resolve(self, ref: Any) -> int:
        """A run reference — an id, ``"latest"``, or ``"prev"`` — as an id."""
        ids = [row[0] for row in
               self._db.execute("SELECT id FROM runs ORDER BY id").fetchall()]
        if not ids:
            raise HistoryError(f"history db {self.path!r} has no runs")
        if ref in ("latest", "last", "-1"):
            return ids[-1]
        if ref in ("prev", "previous", "-2"):
            if len(ids) < 2:
                raise HistoryError(
                    f"history db {self.path!r} has only {len(ids)} run(s); "
                    f"no previous run")
            return ids[-2]
        try:
            run_id = int(ref)
        except (TypeError, ValueError):
            raise HistoryError(
                f"bad run reference {ref!r}: want an id, 'latest' or 'prev'")
        if run_id not in ids:
            raise HistoryError(f"no run {run_id} in {self.path!r}")
        return run_id

    def load_run(self, run_id: int) -> Dict[str, Any]:
        """One run reconstructed in the bench payload shape."""
        row = self._db.execute(
            "SELECT tolerance, manifest FROM runs WHERE id = ?",
            (run_id,)).fetchone()
        if row is None:
            raise HistoryError(f"no run {run_id} in {self.path!r}")
        values = {
            key: {"value": value, "uncertainty": uncertainty}
            for key, value, uncertainty in self._db.execute(
                "SELECT key, value, uncertainty FROM cells "
                "WHERE run_id = ? ORDER BY key", (run_id,))
        }
        ledgers: Dict[str, Dict[str, Any]] = {}
        for cpu, path, cycles in self._db.execute(
                "SELECT cpu, path, cycles FROM ledger "
                "WHERE run_id = ? ORDER BY cpu, path", (run_id,)):
            ledgers.setdefault(cpu, {"entries": {}, "total": 0})
            ledgers[cpu]["entries"][path] = cycles
            ledgers[cpu]["total"] += cycles
        telemetry = {
            name: value for name, value in self._db.execute(
                "SELECT name, value FROM telemetry "
                "WHERE run_id = ? ORDER BY name", (run_id,))
        }
        payload = {
            "values": values,
            "ledger": ledgers,
            "telemetry": telemetry,
            "tolerance": json.loads(row[0]),
            "provenance": json.loads(row[1]),
        }
        leakage = self.leakage_matrix(run_id)
        if leakage["matrix"]:
            payload["leakage"] = leakage
        return payload

    def leakage_matrix(self, run_id: int) -> Dict[str, Any]:
        """One run's stored leakage surface, in the payload shape."""
        matrix: Dict[str, Dict[str, Any]] = {}
        policy = "default"
        for cpu, primitive, boundary, row_policy, blocked, events, \
                blocked_by in self._db.execute(
                    "SELECT cpu, primitive, boundary, policy, blocked, "
                    "events, blocked_by FROM leakage WHERE run_id = ? "
                    "ORDER BY cpu, boundary", (run_id,)):
            policy = row_policy
            matrix.setdefault(cpu, {})[boundary] = {
                "primitive": primitive,
                "leaked": not blocked,
                "events": events,
                "blocked_by": [b for b in blocked_by.split(",") if b],
            }
        return {"policy": policy, "matrix": matrix}

    def trend(self, key: str) -> List[Tuple[int, float, float]]:
        """``(run_id, value, uncertainty)`` per run recording ``key``."""
        return [tuple(row) for row in self._db.execute(
            "SELECT run_id, value, uncertainty FROM cells "
            "WHERE key = ? ORDER BY run_id", (key,))]

    def value_keys(self) -> List[str]:
        return [row[0] for row in self._db.execute(
            "SELECT DISTINCT key FROM cells ORDER BY key")]

    def telemetry_trend(self, name: str) -> List[Tuple[int, float]]:
        return [tuple(row) for row in self._db.execute(
            "SELECT run_id, value FROM telemetry "
            "WHERE name = ? ORDER BY run_id", (name,))]

    # -- comparison --------------------------------------------------------- #

    def diff(self, run_a: Any, run_b: Any) -> RunDiff:
        """Diff two stored runs (noise tolerances come from run A)."""
        id_a = self.resolve(run_a)
        id_b = self.resolve(run_b)
        return diff_payloads(self.load_run(id_a), self.load_run(id_b))

    # -- retention ---------------------------------------------------------- #

    def gc(self, keep: int, dry_run: bool = False) -> List[int]:
        """Drop the oldest runs beyond ``keep``; returns the removed ids.

        ``dry_run=True`` returns the ids that *would* be removed without
        touching the database.
        """
        if keep < 0:
            raise HistoryError("gc keep count must be >= 0")
        ids = [row[0] for row in
               self._db.execute("SELECT id FROM runs ORDER BY id").fetchall()]
        doomed = ids[:max(0, len(ids) - keep)]
        if dry_run:
            return doomed
        for run_id in doomed:
            for table in ("cells", "ledger", "telemetry", "leakage"):
                self._db.execute(f"DELETE FROM {table} WHERE run_id = ?",  # noqa: S608
                                 (run_id,))
            self._db.execute("DELETE FROM runs WHERE id = ?", (run_id,))
        self._db.commit()
        return doomed

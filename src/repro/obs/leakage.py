"""Speculative-leakage observability: a taint-tracking flight recorder.

The cycle ledger (:mod:`repro.obs.ledger`) answers "what did the
mitigations *cost*?"; this module answers the complementary security-side
question: "what would have *leaked*?".  A :class:`LeakageTracer` tags
secret-labelled values at their source — a taint bit on simulated memory
lines (:meth:`~LeakageTracer.taint_address`) and on attacker-controlled
landing pads (:meth:`~LeakageTracer.taint_code`), set by workloads and
the speculation probe — and propagates the taint *mechanistically*
through the microarchitectural structures that already exist: store
buffer forwarding, L1/L2 fills, TLB walks, BTB/RSB-influenced fetch
redirects, and the MDS fill/store/load-port buffers.  The structures
notify the tracer through an optional ``observer`` attribute (``None``
by default, so untraced runs pay one ``is None`` test per hook site,
exactly like the ledger's counter-file hook).

Whenever tainted data influences an architecturally observable channel
during a transient window, the tracer files a :class:`LeakageEvent`:

* ``cache_set`` — a transient load touched the cache with a tainted
  address (the transmit half of every Spectre/Meltdown gadget);
* ``port_timing`` — a divide executed transiently in a window steered by
  a tainted predictor entry (the paper's ``ARITH.DIVIDER_ACTIVE``
  probe signal, Bölük's technique);
* ``buffer_residue`` — a privilege boundary was crossed while an MDS
  buffer still held tainted residue from the other domain (the
  ``verw``-less crossing RIDL/ZombieLoad/Fallout sample).

Events are keyed by ``(primitive, boundary, mitigation_policy,
cpu_model)`` — exactly parallel to the cycle ledger's ``layer /
mitigation / primitive`` taxonomy, so cost and leakage join on the same
axes.  Primitive names follow Canella et al.'s systematization:
``spectre_btb`` (v2), ``spectre_rsb`` (ret2spec), ``spectre_pht`` (v1),
``spectre_stl`` (v4), ``meltdown_us``, ``mds_buffer``.

Mitigations are validated **by construction**, not by lookup table: each
mitigation's flush/serialize point clears exactly the taints it claims
to clear — ``verw`` erases tainted buffer residue, IBPB rewrites tainted
BTB entries, RSB stuffing overwrites tainted return predictions, and an
``lfence`` that terminates a tainted window suppresses its leak.  Every
clear is recorded as *blocked-by* attribution, so a run reports both
what leaked and which mitigation stopped what.

Install like the ledger: ``use_leakage(tracer)`` (scoped) or
``install_leakage(tracer)``; machines adopt the ambient tracer at
construction.  Tracing composes with ``--engine=block`` by falling back
to interpreted execution — taint is a guard-key input, and the
interpreter is bit-identical by the engine's own differential contract.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

__all__ = [
    "CACHE_SET",
    "PORT_TIMING",
    "BUFFER_RESIDUE",
    "SPECTRE_BTB",
    "SPECTRE_RSB",
    "SPECTRE_PHT",
    "SPECTRE_STL",
    "MELTDOWN_US",
    "MDS_BUFFER",
    "LeakageEvent",
    "LeakageSummary",
    "LeakageTracer",
    "current_leakage",
    "install_leakage",
    "use_leakage",
]

#: Observable channels a leakage event transmits through.
CACHE_SET = "cache_set"
PORT_TIMING = "port_timing"
BUFFER_RESIDUE = "buffer_residue"

#: Canella-style transient-execution primitive names.
SPECTRE_BTB = "spectre_btb"
SPECTRE_RSB = "spectre_rsb"
SPECTRE_PHT = "spectre_pht"
SPECTRE_STL = "spectre_stl"
MELTDOWN_US = "meltdown_us"
MDS_BUFFER = "mds_buffer"

#: Cache-line granularity shared with the store buffer and caches.
LINE = 64

#: Flight-recorder bound: counts keep accumulating past it, but event
#: detail records stop growing (``dropped`` says how many).
MAX_EVENTS = 10_000

PATH_SEP = "/"


def join_key(*parts: str) -> str:
    return PATH_SEP.join(parts)


@dataclass
class LeakageEvent:
    """One observation of tainted data reaching an observable channel.

    ``(primitive, boundary, policy, cpu)`` is the taxonomy key shared
    with the cycle ledger's rollup axes; ``channel`` and ``sink`` carry
    the mechanism detail, and ``tsc``/``mode`` place the event on the
    simulated timeline (Perfetto export renders them as instants).
    """

    primitive: str
    channel: str
    boundary: str
    policy: str
    cpu: str
    sink: str
    tsc: int
    mode: str

    def key(self) -> Tuple[str, str, str, str]:
        return (self.primitive, self.boundary, self.policy, self.cpu)

    def path(self) -> str:
        return join_key(self.primitive, self.channel, self.boundary,
                        self.policy, self.cpu)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "primitive": self.primitive,
            "channel": self.channel,
            "boundary": self.boundary,
            "policy": self.policy,
            "cpu": self.cpu,
            "sink": self.sink,
            "tsc": self.tsc,
            "mode": self.mode,
        }


@dataclass
class LeakageSummary:
    """Aggregate view of one tracer (or a merge of many workers)."""

    events: int
    unique_sinks: int
    by_path: Dict[str, int]
    blocked: Dict[str, int]
    dropped: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "events": self.events,
            "unique_sinks": self.unique_sinks,
            "by_path": dict(self.by_path),
            "blocked": dict(self.blocked),
            "dropped": self.dropped,
        }


class _Window:
    """Context of one in-flight transient window."""

    __slots__ = ("primitive", "tainted", "boundary", "fired", "suppressed")

    def __init__(self, primitive: str, tainted: bool, boundary: str) -> None:
        self.primitive = primitive
        self.tainted = tainted
        self.boundary = boundary
        self.fired = False
        self.suppressed = False


class LeakageTracer:
    """Taint state plus the leakage-event flight recorder.

    One tracer can serve several machines in sequence (the probe builds
    a fresh machine per scenario); :meth:`bind_machine` rewires the
    structure observers and re-keys events to the new machine's CPU.
    """

    enabled = True

    def __init__(self, policy: str = "default") -> None:
        self.policy = policy
        self.cpu_model = "unknown"
        self.events: List[LeakageEvent] = []
        self.dropped = 0
        #: path -> count, over *all* events (never truncated).
        self.counts: Dict[str, int] = {}
        self.channel_counts: Dict[str, int] = {}
        #: "mitigation/primitive" -> taints cleared (blocked-by attribution).
        self.blocked: Dict[str, int] = {}

        # Taint state ----------------------------------------------------
        self._lines: Set[int] = set()          # tainted memory lines
        self._pages: Set[int] = set()          # same, page granular (TLB)
        self._code: Set[int] = set()           # taint-labelled landing pads
        self._sb_lines: Set[int] = set()       # tainted store-buffer lines
        self._residue: Dict[str, str] = {}     # MDS buffer -> deposit mode
        self._btb: Dict[int, str] = {}         # branch pc -> training mode
        self._rsb_stack: List[bool] = []       # mirrors the RSB, taint bits
        self._resident: Set[int] = set()       # tainted lines warmed in cache
        self._tlb_resident: Set[int] = set()   # tainted pages with TLB entries
        self._last_rsb_pop = False
        self._window: Optional[_Window] = None
        self._machine: Any = None
        self._rsb_depth = 32
        self._mds_vulnerable = True

    # -- wiring ----------------------------------------------------------- #

    def bind_machine(self, machine: Any) -> None:
        """Adopt ``machine``: key events to its CPU and observe its
        microarchitectural structures (store buffer, caches, TLB, BTB,
        RSB, MDS buffers)."""
        self._machine = machine
        self.cpu_model = machine.cpu.key
        self._mds_vulnerable = machine.cpu.vulns.mds
        self._rsb_depth = machine.rsb.depth
        # Mirror whatever is already in the RSB as untainted.
        self._rsb_stack = [False] * len(machine.rsb)
        machine.store_buffer.observer = self
        machine.caches.observer = self
        machine.tlb.observer = self
        machine.btb.observer = self
        machine.rsb.observer = self
        machine.mds_buffers.observer = self

    # -- taint sources ----------------------------------------------------- #

    def taint_address(self, address: int) -> None:
        """Label the memory line holding ``address`` as secret."""
        self._lines.add(address // LINE)
        self._pages.add(address // 4096)

    def taint_region(self, start: int, length: int) -> None:
        for address in range(start, start + max(length, 1), LINE):
            self.taint_address(address)

    def taint_code(self, address: int) -> None:
        """Label a code address as an attacker-controlled landing pad:
        predictor entries steering speculation there are tainted."""
        self._code.add(address)

    def is_tainted(self, address: int) -> bool:
        return address // LINE in self._lines

    def clear_taints(self) -> None:
        """Drop all taint state (events and attributions are kept)."""
        self._lines.clear()
        self._pages.clear()
        self._code.clear()
        self._sb_lines.clear()
        self._residue.clear()
        self._btb.clear()
        self._rsb_stack = [False] * len(self._rsb_stack)
        self._resident.clear()
        self._tlb_resident.clear()
        self._last_rsb_pop = False

    # -- internals ---------------------------------------------------------- #

    def _now(self) -> int:
        machine = self._machine
        return machine.counters.tsc if machine is not None else 0

    def _mode(self) -> str:
        machine = self._machine
        return machine.mode.value if machine is not None else "?"

    def _block(self, mitigation: str, primitive: str, count: int = 1) -> None:
        key = join_key(mitigation, primitive)
        self.blocked[key] = self.blocked.get(key, 0) + count

    def _file(self, primitive: str, channel: str, boundary: str,
              sink: str) -> None:
        event = LeakageEvent(primitive, channel, boundary, self.policy,
                             self.cpu_model, sink, self._now(), self._mode())
        path = event.path()
        self.counts[path] = self.counts.get(path, 0) + 1
        self.channel_counts[channel] = self.channel_counts.get(channel, 0) + 1
        if len(self.events) < MAX_EVENTS:
            self.events.append(event)
        else:
            self.dropped += 1
        window = self._window
        if window is not None:
            window.fired = True

    # -- store buffer observer ---------------------------------------------- #

    def sb_push(self, address: int, value: int) -> None:
        line = address // LINE
        if line in self._lines or value // LINE in self._lines:
            # Storing secret data taints the line it lands on.
            self._sb_lines.add(line)
            self._lines.add(line)
            self._pages.add(address // 4096)
        else:
            # Clean data overwrites the youngest pending store.
            self._sb_lines.discard(line)

    def sb_drain(self) -> None:
        self._sb_lines.clear()

    def sb_forward(self, address: int) -> None:
        """Committed store-to-load forwarding: no taint movement (the
        value stays within its line); the timeline records it."""
        return None

    def sb_bypass(self, address: int, possible: bool) -> None:
        """A speculative-store-bypass probe (the v4 attack predicate)."""
        if possible and address // LINE in self._sb_lines:
            mode = self._mode()
            self._file(SPECTRE_STL, CACHE_SET, "{0}->{0}".format(mode),
                       "line={0:#x}".format(address // LINE))

    # -- cache / TLB observers ----------------------------------------------- #

    def cache_fill(self, address: int, level: int) -> None:
        line = address // LINE
        if line in self._lines:
            self._resident.add(line)

    def cache_flush(self, address: int) -> None:
        self._resident.discard(address // LINE)

    def cache_flush_l1(self) -> None:
        # L2 stays warm in the model's inclusive hierarchy; keep the
        # resident set as the union (coarse but safe-side).
        return None

    def tlb_fill(self, page: int) -> None:
        if page in self._pages:
            self._tlb_resident.add(page)

    def tlb_flush(self, invalidated: int) -> None:
        """A full shootdown (timeline-driven hook).  Deliberately a
        no-op: taint residency tracking predates this hook and its
        verdicts are pinned by the leakage-matrix tests."""
        return None

    # -- conditional predictor observer (timeline-driven; taint-neutral) ------ #

    def cond_update(self, pc: int, taken: bool, state: int) -> None:
        return None

    def cond_flush(self) -> None:
        return None

    # -- BTB / RSB observers -------------------------------------------------- #

    def btb_train(self, pc: int, target: int, mode: Any) -> None:
        if target in self._code:
            self._btb[pc] = mode.value
        elif pc in self._btb:
            # Retrained with a harmless target: the poison is gone.
            del self._btb[pc]

    def btb_barrier(self) -> None:
        if self._btb:
            self._block("spectre_v2", "ibpb", len(self._btb))
            self._btb.clear()

    def btb_flush(self) -> None:
        if self._btb:
            self._block("spectre_v2", "btb_flush", len(self._btb))
            self._btb.clear()

    def rsb_push(self, return_address: int) -> None:
        self._rsb_stack.append(return_address in self._code)
        if len(self._rsb_stack) > self._rsb_depth:
            self._rsb_stack.pop(0)

    def rsb_pop(self) -> None:
        self._last_rsb_pop = (self._rsb_stack.pop()
                              if self._rsb_stack else False)

    def rsb_stuff(self) -> None:
        tainted = sum(1 for bit in self._rsb_stack if bit)
        if tainted:
            self._block("spectre_v2", "rsb_fill", tainted)
        self._rsb_stack = [False] * self._rsb_depth

    def rsb_clear(self) -> None:
        self._rsb_stack = []

    # -- MDS buffer observers -------------------------------------------------- #

    def residue_load(self, value: int, mode: Any) -> None:
        from ..cpu.buffers import FILL_BUFFER, LOAD_PORT
        self._set_residue(FILL_BUFFER, value, mode)
        self._set_residue(LOAD_PORT, value, mode)

    def residue_store(self, value: int, mode: Any) -> None:
        from ..cpu.buffers import STORE_BUFFER
        self._set_residue(STORE_BUFFER, value, mode)

    def _set_residue(self, name: str, value: int, mode: Any) -> None:
        if value // LINE in self._lines:
            self._residue[name] = mode.value
        else:
            # Untainted traffic overwrites the stale residue.
            self._residue.pop(name, None)

    def residue_clear(self) -> None:
        """The microcode-extended ``verw`` actually cleared the buffers."""
        if self._residue:
            self._block("mds", "verw", len(self._residue))
            self._residue.clear()

    # -- machine-driven hooks --------------------------------------------------- #

    def window_begin(self, primitive: str, mode: Any,
                     pc: Optional[int] = None,
                     target: Optional[int] = None) -> None:
        """A transient window opens.  Taint is derived from the steering
        mechanism: a tainted BTB entry at ``pc``, a tainted RSB pop, or a
        taint-labelled branch ``target``."""
        source = mode.value
        tainted = False
        if pc is not None:
            trained = self._btb.get(pc)
            if trained is not None:
                tainted = True
                source = trained
        if primitive == SPECTRE_RSB and self._last_rsb_pop:
            tainted = True
        if target is not None and target in self._code:
            tainted = True
        boundary = "{0}->{1}".format(source, mode.value)
        self._window = _Window(primitive, tainted, boundary)

    def window_end(self) -> None:
        self._window = None

    def on_lfence(self) -> None:
        """An ``lfence`` terminated the current transient window before
        any tainted sink fired: the Spectre V1 serialization guarantee."""
        window = self._window
        if window is not None and window.tainted and not window.fired:
            self._block("spectre_v1", "lfence")
            window.suppressed = True

    def on_transient_div(self) -> None:
        window = self._window
        if window is not None and window.tainted and not window.suppressed:
            self._file(window.primitive, PORT_TIMING, window.boundary,
                       "divider")

    def on_transient_load(self, address: int, kernel: bool,
                          mode: Any) -> None:
        line = address // LINE
        if line in self._lines:
            self._resident.add(line)
            window = self._window
            if window is not None and window.suppressed:
                return
            if kernel and not mode.is_kernel:
                primitive = MELTDOWN_US
                boundary = "{0}->kernel".format(mode.value)
            elif window is not None:
                primitive = window.primitive
                boundary = window.boundary
            else:
                primitive = SPECTRE_PHT
                boundary = "{0}->{0}".format(mode.value)
            self._file(primitive, CACHE_SET, boundary,
                       "line={0:#x}".format(line))

    def on_stlf_forward(self, address: int) -> None:
        """Committed store-to-load forwarding: taint propagates with the
        value (the deposit observers pick it up); no event — forwarding
        your own architectural data is not a leak."""
        return None

    def on_stlf_blocked(self, address: int) -> None:
        if address // LINE in self._sb_lines:
            self._block("ssbd", "stlf_block")

    def on_predictor_bypass(self, pc: int, primitive: str) -> None:
        """An indirect branch skipped the BTB (retpoline, or IBRS
        suppressing prediction) while a tainted entry was live for it."""
        if pc in self._btb:
            self._block("spectre_v2", primitive)

    def on_redirect_suppressed(self, pc: int) -> None:
        """The BTB held a tainted entry for ``pc`` but hardware filtering
        (mode tags, STIBP, Zen 3's opaque index) refused the redirect."""
        if pc in self._btb:
            self._block("hardware", "btb_isolation")

    def on_boundary(self, old_mode: Any, new_mode: Any) -> None:
        """A privilege crossing (syscall/sysret/vmexit).  Tainted MDS
        residue from the other domain still live here is exactly what a
        sampling attacker reads — the ``verw``-less crossing."""
        if old_mode is new_mode or not self._mds_vulnerable:
            return
        foreign = sorted(name for name, mode in self._residue.items()
                         if mode != new_mode.value)
        if foreign:
            self._file(MDS_BUFFER, BUFFER_RESIDUE,
                       "{0}->{1}".format(old_mode.value, new_mode.value),
                       ",".join(foreign))

    # -- queries / aggregation ---------------------------------------------------- #

    def total_events(self) -> int:
        return sum(self.counts.values())

    def count(self, channel: Optional[str] = None) -> int:
        if channel is None:
            return self.total_events()
        return self.channel_counts.get(channel, 0)

    def summary(self) -> LeakageSummary:
        sinks = {(event.channel, event.sink) for event in self.events}
        return LeakageSummary(
            events=self.total_events(),
            unique_sinks=len(sinks),
            by_path=dict(self.counts),
            blocked=dict(self.blocked),
            dropped=self.dropped,
        )

    def state(self) -> Dict[str, Any]:
        """Serializable aggregate for cross-process transport — the same
        contract as ``CycleLedger.state()``/``merge_state()``."""
        return {
            "events": dict(self.counts),
            "channels": dict(self.channel_counts),
            "blocked": dict(self.blocked),
            "dropped": self.dropped,
        }

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold a worker tracer's :meth:`state` into this one."""
        for path, count in state.get("events", {}).items():
            self.counts[path] = self.counts.get(path, 0) + count
        for channel, count in state.get("channels", {}).items():
            self.channel_counts[channel] = (
                self.channel_counts.get(channel, 0) + count)
        for key, count in state.get("blocked", {}).items():
            self.blocked[key] = self.blocked.get(key, 0) + count
        self.dropped += state.get("dropped", 0)

    def report(self) -> str:
        lines = ["{0} leakage event(s), {1} blocked taint(s)".format(
            self.total_events(), sum(self.blocked.values()))]
        for path, count in sorted(self.counts.items()):
            lines.append("  LEAK {0} x{1}".format(path, count))
        for key, count in sorted(self.blocked.items()):
            lines.append("  blocked-by {0} x{1}".format(key, count))
        return "\n".join(lines) + "\n"


# --------------------------------------------------------------------------- #
# The installed tracer (ambient, like the ledger: None by default)
# --------------------------------------------------------------------------- #

_current: Optional[LeakageTracer] = None


def current_leakage() -> Optional[LeakageTracer]:
    """The leakage tracer new machines will adopt (None = tracing off)."""
    return _current


def install_leakage(tracer: Optional[LeakageTracer]) -> Optional[LeakageTracer]:
    """Replace the installed tracer; returns the previous one."""
    global _current
    previous = _current
    _current = tracer
    return previous


@contextmanager
def use_leakage(tracer: Optional[LeakageTracer]) -> Iterator[Optional[LeakageTracer]]:
    """Install ``tracer`` for the duration of the ``with`` body."""
    previous = install_leakage(tracer)
    try:
        yield tracer
    finally:
        install_leakage(previous)

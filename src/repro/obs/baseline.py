"""Bench snapshots and the noise-aware regression gate.

``spectresim bench`` runs the pinned study grid and freezes everything a
future run can be compared against into a versioned ``BENCH_<n>.json``:

* **values** — every attributed overhead percentage the study drivers
  produce (per cell, per mitigation knob), each with a propagated
  measurement uncertainty derived from the stored
  :class:`~repro.core.stats.Measurement` confidence intervals;
* **ledger rollups** — deterministic per-CPU cycle-attribution ledgers
  (see :mod:`repro.obs.ledger`) from an instrumented reference run, so a
  drifted cost is *localized* to its ``(layer, mitigation, primitive)``
  path, not just detected;
* **leakage surface** — the taint-oracle blocked/leaked matrix from
  :mod:`repro.obs.leakage` over every CPU model under the default
  policy, so a mitigation that silently stops clearing its state shows
  up as a flipped cell, not just a cycle delta;
* **provenance** — the usual manifest (seed, versions, fingerprint).

``spectresim check --against BENCH_1.json`` re-runs the same grid (the
baseline records its own cpus/settings, so the comparison is apples to
apples) and diffs.  Tolerances are noise-aware: a value regresses only
when it moves by more than ``sigma_multiplier × hypot(u_old, u_new)``
plus an absolute floor — i.e. beyond what the recorded measurement
dispersion can explain.  Ledger entries are deterministic integers and
compared with a plain relative tolerance (zero by default).  On any
regression the report blames the drifted ledger paths that belong to
the regressed knob, and the CLI exits nonzero.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import re
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import BaselineError
# The comparison machinery lives in obs.history (the single diff engine
# shared with ``history diff`` and ``core.regression``); the names below
# stay importable from here for API stability.  BaselineDiff *is* the
# history engine's RunDiff.
from .history import (  # noqa: F401  (re-exported API)
    DEFAULT_LEDGER_REL_TOL,
    DEFAULT_MIN_PERCENT_POINTS,
    DEFAULT_SIGMA_MULTIPLIER,
    JS_KNOB_PRIMITIVES as _JS_KNOB_PRIMITIVES,
    LedgerDrift,
    RunDiff as BaselineDiff,
    ValueDelta,
    blame_paths as _blame_paths,
    diff_payloads,
)
from .ledger import CycleLedger, use_ledger
from .provenance import build_manifest

#: Bench schema version (bump on incompatible payload changes).
SCHEMA_VERSION = 1

#: Payload kind marker.
BENCH_KIND = "spectresim-bench"

#: Default pinned CPUs: one Meltdown-vulnerable part (PTI/KPTI active in
#: the default config) and one with hardware fixes, so both mitigation
#: families appear in the baseline.
DEFAULT_BENCH_CPUS: Tuple[str, ...] = ("broadwell", "cascade_lake")

#: Default study drivers snapshotted by ``bench``.
DEFAULT_BENCH_DRIVERS: Tuple[str, ...] = ("figure2", "figure3", "figure5")

#: Iteration counts for the deterministic instrumented ledger reference
#: run (not noise-sampled; exact integers, reproducible across hosts).
LEDGER_ITERATIONS = 4
LEDGER_WARMUP = 1

_BENCH_NAME = re.compile(r"^BENCH_(\d+)\.json$")


def get_cpu(key: str):
    """Resolve a CPU key (lazy import; monkeypatchable seam for tests)."""
    from ..cpu.model import get_cpu as _get_cpu
    return _get_cpu(key)


# --------------------------------------------------------------------------- #
# Uncertainty propagation from stored Measurement CIs
# --------------------------------------------------------------------------- #

def _rel(measurement) -> float:
    if measurement.mean == 0:
        return 0.0
    return abs(measurement.ci_half_width / measurement.mean)


def _ratio_uncertainty(numer, denom) -> float:
    """Half-width of 100·(numer/denom) given both Measurements' CIs."""
    if denom.mean == 0:
        return 0.0
    ratio = abs(numer.mean / denom.mean)
    return 100.0 * ratio * math.hypot(_rel(numer), _rel(denom))


def _attribution_values(driver: str, result) -> Dict[str, Dict[str, float]]:
    prefix = f"{driver}/{result.cpu}/{result.workload}"
    total_u = _ratio_uncertainty(result.default, result.baseline)
    values = {
        f"{prefix}:total": {
            "value": result.total_overhead_percent,
            "uncertainty": total_u,
        },
        f"{prefix}:other": {
            "value": result.other_percent,
            "uncertainty": total_u,
        },
    }
    base_mean = result.baseline.mean
    for c in result.contributions:
        if base_mean:
            u = 100.0 * math.hypot(c.with_knob.ci_half_width,
                                   c.without_knob.ci_half_width) / abs(base_mean)
        else:
            u = 0.0
        values[f"{prefix}:{c.knob}"] = {"value": c.percent, "uncertainty": u}
    return values


def _paired_values(driver: str, result) -> Dict[str, Dict[str, float]]:
    prefix = f"{driver}/{result.cpu}/{result.workload}"
    return {
        f"{prefix}:overhead": {
            "value": result.overhead_percent,
            "uncertainty": _ratio_uncertainty(result.treated, result.baseline),
        },
    }


# --------------------------------------------------------------------------- #
# Collection
# --------------------------------------------------------------------------- #

def ledger_snapshot(cpu_key: str) -> CycleLedger:
    """Deterministic instrumented reference run for one CPU.

    Exercises every ledger layer — syscall entry/handler/exit, scheduler,
    JS engine, VM exits — under the CPU's Linux-default config with fixed
    iteration counts and seed 0.  No noise sampling is involved, so the
    resulting entries are exact integers, reproducible anywhere the code
    is identical; :meth:`~repro.obs.ledger.CycleLedger.verify` enforces
    the sum-to-TSC invariant before the snapshot is trusted.
    """
    from ..cpu.machine import Machine
    from ..hypervisor.vm import Hypervisor
    from ..jsengine import octane
    from ..mitigations.policy import linux_default
    from ..workloads import lebench

    cpu = get_cpu(cpu_key)
    config = linux_default(cpu)
    ledger = CycleLedger()
    with use_ledger(ledger):
        machine = Machine(cpu, seed=0)
        lebench.run_suite(machine, config,
                          iterations=LEDGER_ITERATIONS, warmup=LEDGER_WARMUP)
        js_machine = Machine(cpu, seed=0)
        octane.run_suite(js_machine, config,
                         iterations=LEDGER_ITERATIONS, warmup=LEDGER_WARMUP)
        hv_machine = Machine(cpu, seed=0)
        hypervisor = Hypervisor(hv_machine, host_config=config)
        guest = hypervisor.create_guest()
        for i in range(LEDGER_ITERATIONS):
            guest.hypercall(2000, taints_l1=(i % 2 == 0))
    ledger.verify()
    return ledger


def leakage_snapshot(policy: str = "default", seed: int = 0) -> Dict[str, Any]:
    """The taint-oracle leakage surface for the bench payload.

    Runs the :mod:`repro.core.probe` grid with the leakage tracer as the
    oracle over every CPU model under ``policy`` (default: each part's
    Linux-default Spectre-v2 strategy).  Deterministic -- the probe is a
    fixed instruction sequence, no noise sampling -- so the resulting
    blocked/leaked matrix is exact and diffable across runs.  Raw events
    are dropped from the payload (the per-run history DB and Perfetto
    export carry those); the matrix, merged state, and summary stay.
    """
    from ..core.probe import leakage_report
    from ..cpu.model import all_cpus

    report = leakage_report(all_cpus(), policy=policy, seed=seed)
    report.pop("events", None)
    return report


def collect(
    cpus: Optional[Sequence[str]] = None,
    settings: Optional[Any] = None,
    drivers: Optional[Sequence[str]] = None,
    executor: Optional[Any] = None,
    command: str = "bench",
    report: Optional[Any] = None,
) -> Dict[str, Any]:
    """Run the pinned grid and assemble a bench payload.

    ``report``, when given, is called with each driver's name right after
    that driver runs (the executor resets its stats per driver, so this
    is the only point where per-driver cache/jobs numbers are visible).

    The payload also carries a ``telemetry`` block — per-phase host
    wall-clock, whole-campaign executor counters, the block-engine
    counter delta for this collection, and cells/sec — which the run
    history store flattens into numeric time series so the simulator's
    *own* performance is tracked longitudinally next to the study values.
    """
    from ..core import study
    from ..cpu import engine as blockengine
    from ..cpu import replicas as replicabatch

    started = time.perf_counter()
    cpu_keys = list(cpus or DEFAULT_BENCH_CPUS)
    settings = settings or study.Settings()
    driver_names = list(drivers or DEFAULT_BENCH_DRIVERS)
    models = [get_cpu(key) for key in cpu_keys]

    engine_before = blockengine.STATS.as_dict()
    replicas_before = replicabatch.STATS.as_dict()
    phases: Dict[str, float] = {}
    executor_totals: Optional[Dict[str, Any]] = None

    values: Dict[str, Dict[str, float]] = {}
    for driver in driver_names:
        phase_started = time.perf_counter()
        if driver == "figure2":
            for result in study.figure2(models, settings, executor=executor):
                values.update(_attribution_values(driver, result))
        elif driver == "figure3":
            for result in study.figure3(models, settings, executor=executor):
                values.update(_attribution_values(driver, result))
        elif driver == "figure5":
            for result in study.figure5(models, settings=settings,
                                        executor=executor):
                values.update(_paired_values(driver, result))
        elif driver == "parsec_default":
            for result in study.parsec_default_overheads(
                    models, settings=settings, executor=executor):
                values.update(_paired_values(driver, result))
        elif driver == "vm_lebench":
            for result in study.vm_lebench_overheads(
                    models, settings=settings, executor=executor):
                values.update(_paired_values(driver, result))
        else:
            raise BaselineError(f"unknown bench driver {driver!r}")
        phases[driver] = time.perf_counter() - phase_started
        if executor is not None and hasattr(executor, "stats"):
            stats = executor.stats.as_dict()
            if executor_totals is None:
                executor_totals = dict(stats)
            else:
                for name, value in stats.items():
                    if name == "jobs":
                        executor_totals[name] = max(executor_totals[name],
                                                    value)
                    else:
                        executor_totals[name] += value
        if report is not None:
            report(driver)

    ledger_started = time.perf_counter()
    ledgers: Dict[str, Any] = {}
    sim_cycles = 0
    for key in cpu_keys:
        ledger = ledger_snapshot(key)
        sim_cycles += ledger.total()
        ledgers[key] = {"entries": ledger.paths(), "total": ledger.total()}
    phases["ledger"] = time.perf_counter() - ledger_started

    # Leakage surface: the taint-oracle probe grid over *all* CPU models
    # under the default Linux policy (the dashboard's 8xN panel), not just
    # the pinned bench CPUs -- the probe grid is deterministic and cheap.
    leakage_started = time.perf_counter()
    leakage = leakage_snapshot(seed=settings.seed)
    phases["leakage"] = time.perf_counter() - leakage_started

    wall = time.perf_counter() - started
    engine_after = blockengine.STATS.as_dict()
    engine_delta: Dict[str, float] = {
        name: engine_after[name] - engine_before.get(name, 0)
        for name in engine_after
    }
    eligible = engine_delta["block_hits"] + engine_delta["interp_fallbacks"]
    engine_delta["hit_rate"] = (engine_delta["block_hits"] / eligible
                                if eligible else 0.0)
    replicas_after = replicabatch.STATS.as_dict()
    replicas_delta: Dict[str, float] = {
        name: replicas_after[name] - replicas_before.get(name, 0)
        for name in replicas_after
    }
    batch_eligible = (replicas_delta["batched"]
                      + replicas_delta["scalar_fallbacks"])
    replicas_delta["hit_rate"] = (replicas_delta["batched"] / batch_eligible
                                  if batch_eligible else 1.0)
    telemetry: Dict[str, Any] = {
        "phases": phases,
        "engine": engine_delta,
        "replicas": replicas_delta,
        "replicas_per_s": (replicas_delta["replicas"] / wall
                           if wall > 0 else 0.0),
        "wall_s": wall,
    }
    if executor_totals is not None:
        looked = (executor_totals["cache_hits"]
                  + executor_totals["cache_misses"]
                  + executor_totals["cache_stale"])
        telemetry["executor"] = executor_totals
        telemetry["cache_hit_rate"] = (
            executor_totals["cache_hits"] / looked if looked else 0.0)
        telemetry["cells_per_s"] = (
            executor_totals["total"] / wall if wall > 0 else 0.0)

    manifest = build_manifest(
        command=command,
        seed=settings.seed,
        cpus=cpu_keys,
        settings=settings,
        wall_time_s=wall,
        sim_cycles=sim_cycles,
    )
    return {
        "schema": SCHEMA_VERSION,
        "kind": BENCH_KIND,
        "cpus": cpu_keys,
        "drivers": driver_names,
        "settings": dict(dataclasses.asdict(settings)),
        "tolerance": {
            "sigma_multiplier": DEFAULT_SIGMA_MULTIPLIER,
            "min_percent_points": DEFAULT_MIN_PERCENT_POINTS,
            "ledger_rel_tol": DEFAULT_LEDGER_REL_TOL,
        },
        "values": values,
        "ledger": ledgers,
        "leakage": leakage,
        "telemetry": telemetry,
        "provenance": manifest.to_dict(),
    }


# --------------------------------------------------------------------------- #
# Persistence
# --------------------------------------------------------------------------- #

def next_bench_path(directory: str) -> str:
    """The next free ``BENCH_<n>.json`` in ``directory`` (starting at 1)."""
    highest = 0
    try:
        names = os.listdir(directory)
    except OSError:
        names = []
    for name in names:
        match = _BENCH_NAME.match(name)
        if match:
            highest = max(highest, int(match.group(1)))
    return os.path.join(directory, f"BENCH_{highest + 1}.json")


def write_bench(payload: Dict[str, Any], path: str) -> str:
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def load_bench(path: str) -> Dict[str, Any]:
    try:
        with open(path) as f:
            payload = json.load(f)
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path!r}: {exc}") from exc
    except ValueError as exc:
        raise BaselineError(f"baseline {path!r} is not JSON: {exc}") from exc
    if payload.get("kind") != BENCH_KIND:
        raise BaselineError(f"{path!r} is not a spectresim bench payload")
    if payload.get("schema") != SCHEMA_VERSION:
        raise BaselineError(
            f"baseline {path!r} has schema v{payload.get('schema')}, "
            f"this build reads v{SCHEMA_VERSION}")
    return payload


# --------------------------------------------------------------------------- #
# Comparison
# --------------------------------------------------------------------------- #

def compare(baseline: Dict[str, Any],
            current: Dict[str, Any]) -> BaselineDiff:
    """Diff ``current`` against ``baseline`` with the baseline's tolerances.

    Thin wrapper over :func:`repro.obs.history.diff_payloads`, which is
    the one diff engine for ``check``, ``history diff`` and the export
    regression differ alike.
    """
    return diff_payloads(baseline, current)


def render_report(diff: BaselineDiff) -> str:
    """The per-cell, per-mitigation blame report ``check`` prints."""
    lines: List[str] = []
    for delta in diff.regressions:
        lines.append(
            f"REGRESSION {delta.key}: {delta.old:+.2f}% -> {delta.new:+.2f}% "
            f"({delta.delta:+.2f}pp, allowed +/-{delta.allowed:.2f}pp)")
        for blame in delta.blame:
            lines.append(f"  blame: {blame}")
        if not delta.blame:
            lines.append("  blame: no matching ledger drift "
                         "(measurement-level change)")
    for drift in diff.ledger_regressions:
        lines.append(f"LEDGER REGRESSION {drift.describe()}")
    for key in diff.missing:
        lines.append(f"MISSING {key}: present in baseline, absent in this run")
    for delta in diff.improvements:
        lines.append(
            f"improvement {delta.key}: {delta.old:+.2f}% -> {delta.new:+.2f}% "
            f"({delta.delta:+.2f}pp)")
    for drift in diff.ledger_improvements:
        lines.append(f"ledger improvement {drift.describe()}")
    for key in diff.new_keys:
        lines.append(f"new {key}: not in baseline (re-bench to track it)")
    verdict = "FAIL" if diff.failed else "OK"
    lines.append(
        f"{diff.compared} values compared: {len(diff.regressions)} "
        f"regressions, {len(diff.improvements)} improvements, "
        f"{len(diff.ledger_regressions)} ledger regressions, "
        f"{len(diff.missing)} missing -> {verdict}")
    return "\n".join(lines) + "\n"


def check_against(baseline_path: str,
                  executor: Optional[Any] = None,
                  command: str = "check",
                  report: Optional[Any] = None,
                  on_payload: Optional[Any] = None) -> Tuple[BaselineDiff, str]:
    """Re-run the baseline's own grid and diff: (diff, report).

    The fresh run reuses the cpus, settings, and drivers recorded in the
    baseline, so the comparison never mixes grids.  ``on_payload``, when
    given, receives the freshly collected payload *before* the diff is
    evaluated — the history auto-record hook — so a failing check still
    leaves its run in the longitudinal record.
    """
    from ..core import study

    payload = load_bench(baseline_path)
    settings = study.Settings(**payload["settings"])
    current = collect(
        cpus=payload["cpus"],
        settings=settings,
        drivers=payload.get("drivers"),
        executor=executor,
        command=command,
        report=report,
    )
    if on_payload is not None:
        on_payload(current)
    diff = compare(payload, current)
    return diff, render_report(diff)

"""Cross-layer observability: span tracing, metrics, exporters, provenance.

The subsystem threads through every layer of the simulator:

* :mod:`repro.obs.spans` — hierarchical span tracer on the simulated cycle
  clock, with a zero-cost null tracer installed by default;
* :mod:`repro.obs.metrics` — one registry of counters/gauges/histograms
  bridging machine perf counters and study-level statistics;
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto) and
  collapsed-stack flamegraph exporters;
* :mod:`repro.obs.ledger` — hierarchical cycle-attribution ledger: every
  charged cycle is tagged ``(layer, mitigation, primitive)`` and the
  entries sum exactly to the machine TSC delta;
* :mod:`repro.obs.leakage` — taint-tracking leakage tracer: secret labels
  propagate through the microarchitectural structures and every tainted
  touch of an observable channel during a transient window files a
  :class:`~repro.obs.leakage.LeakageEvent`, keyed parallel to the ledger;
* :mod:`repro.obs.baseline` — bench snapshots (``BENCH_<n>.json``) and
  the noise-aware regression gate behind ``spectresim check``
  (imported directly, not re-exported: it pulls in the CPU catalog,
  which this package must not do at import time);
* :mod:`repro.obs.history` — SQLite run-history store plus the shared
  noise-aware diff/attribution engine (ledger blame waterfalls);
* :mod:`repro.obs.report` — static HTML dashboard over the history
  store (trends, waterfalls, simulator self-performance);
* :mod:`repro.obs.provenance` — run manifests stamped into exported
  artifacts.

See ``docs/observability.md`` for the span vocabulary and usage.
"""

from .history import (
    HistoryStore,
    RunDiff,
    default_history_db,
    diff_payloads,
    render_diff,
)
from .leakage import (
    LeakageEvent,
    LeakageSummary,
    LeakageTracer,
    current_leakage,
    install_leakage,
    use_leakage,
)
from .ledger import (
    CycleLedger,
    current_ledger,
    install_ledger,
    ledger_scope,
    use_ledger,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .timeline import (
    Divergence,
    EventTimeline,
    TimelineEvent,
    current_timeline,
    first_divergence,
    install_timeline,
    render_divergence,
    use_timeline,
)
from .spans import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanTracer,
    current_tracer,
    install_tracer,
    use_tracer,
)
from .export import (
    to_chrome_trace,
    to_chrome_trace_json,
    to_collapsed_stacks,
    write_chrome_trace,
    write_flamegraph,
)
from .provenance import (
    RunManifest,
    build_manifest,
    code_fingerprint,
    config_to_dict,
    manifest_comment_lines,
    settings_to_dict,
    stamp_payload,
)

__all__ = [
    "Counter",
    "CycleLedger",
    "Divergence",
    "EventTimeline",
    "Gauge",
    "Histogram",
    "HistoryStore",
    "LeakageEvent",
    "LeakageSummary",
    "LeakageTracer",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "RunDiff",
    "RunManifest",
    "Span",
    "SpanTracer",
    "TimelineEvent",
    "build_manifest",
    "code_fingerprint",
    "config_to_dict",
    "current_leakage",
    "current_ledger",
    "current_timeline",
    "current_tracer",
    "default_history_db",
    "diff_payloads",
    "first_divergence",
    "install_leakage",
    "install_ledger",
    "install_timeline",
    "install_tracer",
    "ledger_scope",
    "manifest_comment_lines",
    "render_diff",
    "render_divergence",
    "settings_to_dict",
    "stamp_payload",
    "to_chrome_trace",
    "to_chrome_trace_json",
    "to_collapsed_stacks",
    "use_leakage",
    "use_ledger",
    "use_timeline",
    "use_tracer",
    "write_chrome_trace",
    "write_flamegraph",
]

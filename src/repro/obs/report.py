"""Static HTML dashboard over the run-history store.

``spectresim history report`` renders one self-contained HTML file — no
server, no external assets, stdlib-only templating, inline SVG charts —
with the longitudinal views the paper itself is built around:

* **headline trends** — total overhead per (driver, workload) cell over
  recorded runs, one line per CPU;
* **per-mitigation cost evolution** — a sparkline card per mitigation
  knob, tracking its mean attributed cost across the grid;
* **leakage surface** — the newest run's taint-oracle blocked/leaked
  matrix (CPU model × train→victim boundary) with per-cell blocked-by
  mitigation attribution;
* **blame waterfall** — the latest run diffed against its predecessor,
  each changed ledger cell decomposed into per-mitigation cycle steps
  that sum exactly to the cell's TSC delta;
* **simulator self-performance** — cells/sec, engine hit rate, cache
  hit rate, wall time, as stat tiles with sparklines;
* **regression annotations** — every consecutive-run diff that found a
  noise-significant regression, plus fingerprint changes and rows that
  were recorded ``--allow-dirty``.

Output is **byte-stable**: rendering the same database twice yields the
identical file (sorted iteration, fixed float formatting, and no
generation timestamps — the newest run's own recorded ``created_at``
identifies the data vintage instead).
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional, Sequence, Tuple

from .history import CellDelta, HistoryStore, RunDiff, RunInfo

__all__ = ["render_report", "write_report"]

#: Categorical series slots (light, dark) — fixed assignment order, the
#: first three validate all-pairs for colorblind safety; more CPUs than
#: that fold into the table view.
_SERIES = (("#2a78d6", "#3987e5"),
           ("#eb6834", "#d95926"),
           ("#1baf7a", "#199e70"))
_MAX_SERIES = len(_SERIES)

_CSS = """\
:root { color-scheme: light; }
body {
  margin: 0; padding: 24px 32px; background: #f9f9f7; color: #0b0b0b;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  font-size: 14px; line-height: 1.45;
}
.viz-root {
  --surface-1: #fcfcfb; --text-primary: #0b0b0b; --text-secondary: #52514e;
  --text-muted: #898781; --gridline: #e1e0d9; --axis: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --delta-up: #e34948; --delta-down: #2a78d6; --good: #006300;
  --critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) body { background: #0d0d0d; color: #ffffff; }
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19; --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --text-muted: #898781; --gridline: #2c2c2a; --axis: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --delta-up: #e66767; --delta-down: #3987e5; --good: #0ca30c;
    --critical: #d03b3b;
  }
}
:root[data-theme="dark"] body { background: #0d0d0d; color: #ffffff; }
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --surface-1: #1a1a19; --text-primary: #ffffff; --text-secondary: #c3c2b7;
  --text-muted: #898781; --gridline: #2c2c2a; --axis: #383835;
  --border: rgba(255,255,255,0.10);
  --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
  --delta-up: #e66767; --delta-down: #3987e5; --good: #0ca30c;
  --critical: #d03b3b;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 28px 0 10px; }
.sub { color: var(--text-secondary); margin: 0 0 16px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 160px;
}
.tile .label { color: var(--text-secondary); font-size: 12px; }
.tile .value { font-size: 24px; font-weight: 600; }
.tile .unit { color: var(--text-muted); font-size: 13px; font-weight: 400; }
.cards { display: flex; flex-wrap: wrap; gap: 12px; }
.card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px;
}
.card .title { color: var(--text-secondary); font-size: 12px; margin-bottom: 4px; }
.legend { display: flex; gap: 16px; margin: 6px 0 10px; font-size: 12px;
  color: var(--text-secondary); }
.legend .swatch { display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: 5px; vertical-align: -1px; }
.note { color: var(--text-muted); font-size: 13px; }
.flag { color: var(--critical); font-weight: 600; }
.ok { color: var(--good); font-weight: 600; }
table { border-collapse: collapse; background: var(--surface-1);
  border: 1px solid var(--border); border-radius: 8px; }
th, td { padding: 5px 12px; text-align: left; font-size: 13px;
  font-variant-numeric: tabular-nums; }
th { color: var(--text-secondary); font-weight: 600;
  border-bottom: 1px solid var(--gridline); }
td.num, th.num { text-align: right; }
details { margin: 10px 0; }
summary { cursor: pointer; color: var(--text-secondary); }
svg text { fill: var(--text-muted); font-size: 11px;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif; }
code { font-size: 12px; }
"""


def _esc(value: object) -> str:
    return html.escape(str(value), quote=True)


def _num(value: float, digits: int = 4) -> str:
    """Stable short decimal rendering (no exponent wobble across runs)."""
    text = f"{value:.{digits}f}".rstrip("0").rstrip(".")
    return text if text not in ("", "-0") else "0"


def _coord(value: float) -> str:
    return f"{value:.2f}"


def _series_color(index: int) -> str:
    return f"var(--series-{index + 1})"


def _split_key(key: str) -> Tuple[str, str, str, str]:
    """``figure2/broadwell/lebench:pti`` -> (driver, cpu, workload, knob)."""
    head, _sep, knob = key.rpartition(":")
    parts = head.split("/")
    while len(parts) < 3:
        parts.append("")
    return parts[0], parts[1], parts[2], knob


# --------------------------------------------------------------------------- #
# SVG building blocks
# --------------------------------------------------------------------------- #

def _scale(points: Sequence[float], lo: float, hi: float,
           out_lo: float, out_hi: float) -> List[float]:
    span = hi - lo
    if span <= 0:
        return [(out_lo + out_hi) / 2.0 for _ in points]
    return [out_lo + (p - lo) / span * (out_hi - out_lo) for p in points]


def _sparkline(values: Sequence[float], width: int = 120,
               height: int = 32, color: str = "var(--series-1)") -> str:
    """A minimal inline trend line (single series: no legend, no axes)."""
    if not values:
        return ""
    pad = 4.0
    lo, hi = min(values), max(values)
    xs = _scale(list(range(len(values))), 0, max(len(values) - 1, 1),
                pad, width - pad)
    ys = _scale(values, lo, hi, height - pad, pad)
    pts = " ".join(f"{_coord(x)},{_coord(y)}" for x, y in zip(xs, ys))
    last = (f'<circle cx="{_coord(xs[-1])}" cy="{_coord(ys[-1])}" r="3" '
            f'fill="{color}" stroke="var(--surface-1)" stroke-width="2"/>')
    return (f'<svg width="{width}" height="{height}" role="img" '
            f'aria-label="trend">'
            f'<polyline points="{pts}" fill="none" stroke="{color}" '
            f'stroke-width="2" stroke-linecap="round" '
            f'stroke-linejoin="round"/>{last}</svg>')


def _line_chart(series: Sequence[Tuple[str, List[Tuple[int, float]]]],
                run_ids: Sequence[int], unit: str = "%",
                width: int = 420, height: int = 160) -> str:
    """Multi-series line chart over run ids (x) with hairline gridlines."""
    left, right, top, bottom = 36.0, 10.0, 10.0, 22.0
    values = [v for _label, pts in series for _r, v in pts]
    if not values or not run_ids:
        return '<p class="note">no data</p>'
    lo, hi = min(values), max(values)
    if lo == hi:
        lo, hi = lo - 1.0, hi + 1.0
    x_of = {rid: x for rid, x in zip(
        run_ids, _scale(list(range(len(run_ids))), 0,
                        max(len(run_ids) - 1, 1), left, width - right))}
    parts = [f'<svg width="{width}" height="{height}" role="img" '
             f'aria-label="trend chart">']
    for frac in (0.0, 0.5, 1.0):
        y = top + (1 - frac) * (height - top - bottom)
        value = lo + frac * (hi - lo)
        parts.append(f'<line x1="{_coord(left)}" y1="{_coord(y)}" '
                     f'x2="{_coord(width - right)}" y2="{_coord(y)}" '
                     f'stroke="var(--gridline)" stroke-width="1"/>')
        parts.append(f'<text x="{_coord(left - 4)}" y="{_coord(y + 3)}" '
                     f'text-anchor="end">{_num(value, 2)}{_esc(unit)}</text>')
    for rid in run_ids:
        parts.append(f'<text x="{_coord(x_of[rid])}" '
                     f'y="{_coord(height - 6)}" text-anchor="middle">'
                     f'run {rid}</text>')
    for index, (label, points) in enumerate(series[:_MAX_SERIES]):
        color = _series_color(index)
        ys = {rid: top + (1 - (v - lo) / (hi - lo)) * (height - top - bottom)
              for rid, v in points}
        coords = " ".join(f"{_coord(x_of[rid])},{_coord(ys[rid])}"
                          for rid, _v in points if rid in x_of)
        parts.append(f'<polyline points="{coords}" fill="none" '
                     f'stroke="{color}" stroke-width="2" '
                     f'stroke-linecap="round" stroke-linejoin="round"/>')
        for rid, value in points:
            if rid not in x_of:
                continue
            parts.append(
                f'<circle cx="{_coord(x_of[rid])}" cy="{_coord(ys[rid])}" '
                f'r="4" fill="{color}" stroke="var(--surface-1)" '
                f'stroke-width="2"><title>{_esc(label)} · run {rid}: '
                f'{_num(value)}{_esc(unit)}</title></circle>')
    parts.append("</svg>")
    return "".join(parts)


def _legend(labels: Sequence[str]) -> str:
    if len(labels) < 2:
        return ""
    items = "".join(
        f'<span><span class="swatch" '
        f'style="background:{_series_color(i)}"></span>{_esc(label)}</span>'
        for i, label in enumerate(labels[:_MAX_SERIES]))
    folded = ""
    if len(labels) > _MAX_SERIES:
        folded = (f'<span class="note">+{len(labels) - _MAX_SERIES} more '
                  f'in the table view</span>')
    return f'<div class="legend">{items}{folded}</div>'


def _waterfall_svg(cell: CellDelta, width: int = 520) -> str:
    """Floating-bar waterfall: per-mitigation cycle deltas, exact sum."""
    steps = list(cell.steps) + [("= total", cell.delta)]
    row_h, gap, left, right = 26, 6, 150.0, 10.0
    height = len(steps) * (row_h + gap) + 14
    magnitudes = [abs(d) for _m, d in steps] or [1]
    max_mag = max(magnitudes) or 1
    zero_x = left + (width - left - right) / 2.0
    half = (width - left - right) / 2.0 - 4.0
    parts = [f'<svg width="{width}" height="{height}" role="img" '
             f'aria-label="blame waterfall">',
             f'<line x1="{_coord(zero_x)}" y1="4" x2="{_coord(zero_x)}" '
             f'y2="{height - 10}" stroke="var(--axis)" stroke-width="1"/>']
    for row, (mitigation, delta) in enumerate(steps):
        y = row * (row_h + gap) + 6
        bar_w = half * abs(delta) / max_mag
        color = "var(--delta-up)" if delta > 0 else "var(--delta-down)"
        x = zero_x if delta > 0 else zero_x - bar_w
        parts.append(f'<text x="{_coord(left - 8)}" '
                     f'y="{_coord(y + row_h / 2 + 4)}" text-anchor="end">'
                     f'{_esc(mitigation)}</text>')
        if delta:
            radius = min(4.0, bar_w / 2.0)
            parts.append(
                f'<rect x="{_coord(x)}" y="{_coord(y + 4)}" '
                f'width="{_coord(max(bar_w, 1.0))}" '
                f'height="{row_h - 8}" rx="{_coord(radius)}" fill="{color}">'
                f'<title>{_esc(mitigation)}: {delta:+,} cycles</title></rect>')
        anchor = "start" if delta > 0 else "end"
        tx = zero_x + bar_w + 6 if delta > 0 else zero_x - bar_w - 6
        parts.append(f'<text x="{_coord(tx)}" '
                     f'y="{_coord(y + row_h / 2 + 4)}" '
                     f'text-anchor="{anchor}">{delta:+,}</text>')
    parts.append("</svg>")
    return "".join(parts)


# --------------------------------------------------------------------------- #
# Sections
# --------------------------------------------------------------------------- #

def _section_self_perf(store: HistoryStore, runs: Sequence[RunInfo]) -> str:
    tiles = []
    specs = [
        ("cells / sec", "cells_per_s", "", 1),
        ("engine hit rate", "engine.hit_rate", "%", 2),
        ("cache hit rate", "cache_hit_rate", "%", 2),
        ("replicas / sec", "replicas_per_s", "", 1),
        ("batch hit rate", "replicas.hit_rate", "%", 2),
    ]
    for label, name, unit, digits in specs:
        trend = store.telemetry_trend(name)
        values = [v for _rid, v in trend]
        shown = [v * 100.0 for v in values] if unit == "%" else values
        latest = _num(shown[-1], digits) if shown else "&#8212;"
        spark = _sparkline(shown) if len(shown) >= 2 else ""
        tiles.append(
            f'<div class="tile"><div class="label">{_esc(label)}</div>'
            f'<div class="value">{latest}'
            f'<span class="unit">{_esc(unit)}</span></div>{spark}</div>')
    walls = [(run.id, run.wall_time_s) for run in runs
             if run.wall_time_s is not None]
    wall_values = [w for _rid, w in walls]
    wall_latest = _num(wall_values[-1], 2) if wall_values else "&#8212;"
    wall_spark = _sparkline(wall_values) if len(wall_values) >= 2 else ""
    tiles.append(
        f'<div class="tile"><div class="label">wall time</div>'
        f'<div class="value">{wall_latest}<span class="unit">s</span></div>'
        f'{wall_spark}</div>')
    note = ('<p class="note">Telemetry rows appear for runs recorded by '
            'this build; older or externally imported runs may lack '
            'them.</p>')
    return (f'<h2 id="self-perf">Simulator self-performance</h2>'
            f'<div class="tiles">{"".join(tiles)}</div>{note}')


def _section_trends(store: HistoryStore, run_ids: Sequence[int]) -> str:
    groups: Dict[Tuple[str, str], Dict[str, List[Tuple[int, float]]]] = {}
    for key in store.value_keys():
        driver, cpu, workload, knob = _split_key(key)
        if knob not in ("total", "overhead"):
            continue
        trend = [(rid, value) for rid, value, _u in store.trend(key)]
        if trend:
            groups.setdefault((driver, workload), {})[cpu] = trend
    if not groups:
        return ('<h2 id="trends">Headline trends</h2>'
                '<p class="note">no recorded study values yet</p>')
    cards = []
    for (driver, workload), by_cpu in sorted(groups.items()):
        cpus = sorted(by_cpu)
        series = [(cpu, by_cpu[cpu]) for cpu in cpus]
        cards.append(
            f'<div class="card"><div class="title">{_esc(driver)} · '
            f'{_esc(workload)} · total overhead</div>'
            f'{_legend(cpus)}'
            f'{_line_chart(series, run_ids)}</div>')
    return (f'<h2 id="trends">Headline trends</h2>'
            f'<div class="cards">{"".join(cards)}</div>')


def _section_mitigations(store: HistoryStore,
                         run_ids: Sequence[int]) -> str:
    by_knob: Dict[str, Dict[int, List[float]]] = {}
    cpus_by_knob: Dict[str, set] = {}
    for key in store.value_keys():
        _driver, cpu, _workload, knob = _split_key(key)
        if knob in ("total", "other", "overhead", ""):
            continue
        for rid, value, _u in store.trend(key):
            by_knob.setdefault(knob, {}).setdefault(rid, []).append(value)
        cpus_by_knob.setdefault(knob, set()).add(cpu)
    if not by_knob:
        return ('<h2 id="mitigations">Per-mitigation cost evolution</h2>'
                '<p class="note">no attributed mitigation costs '
                'recorded yet</p>')
    cards = []
    for knob in sorted(by_knob):
        per_run = by_knob[knob]
        means = [sum(per_run[rid]) / len(per_run[rid])
                 for rid in run_ids if rid in per_run]
        if not means:
            continue
        spark = (_sparkline(means, width=160, height=36)
                 if len(means) >= 2 else "")
        cards.append(
            f'<div class="card"><div class="title">{_esc(knob)}</div>'
            f'<div class="value" style="font-size:18px;font-weight:600">'
            f'{_num(means[-1], 2)}'
            f'<span class="unit">% mean</span></div>{spark}</div>')
    note = ('<p class="note">Mean attributed overhead across the recorded '
            'grid (all CPUs, workloads, drivers) per run.</p>')
    return (f'<h2 id="mitigations">Per-mitigation cost evolution</h2>'
            f'<div class="cards">{"".join(cards)}</div>{note}')


def _section_leakage(store: HistoryStore, runs: Sequence[RunInfo]) -> str:
    """Per-CPU × per-boundary leakage matrix from the newest run that
    recorded a taint-oracle surface (see :mod:`repro.obs.leakage`)."""
    head = '<h2 id="leakage">Speculative-leakage surface</h2>'
    matrix_run: Optional[RunInfo] = None
    surface: Dict[str, object] = {}
    for run in reversed(runs):
        surface = store.leakage_matrix(run.id)
        if surface.get("matrix"):
            matrix_run = run
            break
    if matrix_run is None:
        return (head + '<p class="note">no leakage surface recorded yet '
                '&#8212; runs predate the taint tracer.</p>')
    matrix = surface["matrix"]
    policy = surface.get("policy", "default")
    boundaries = sorted({boundary
                         for row in matrix.values() if row
                         for boundary in row})
    header = "".join(f"<th>{_esc(b)}</th>" for b in boundaries)
    rows = []
    leaks = 0
    for cpu in sorted(matrix):
        row = matrix[cpu]
        cells = []
        for boundary in boundaries:
            cell = (row or {}).get(boundary)
            if cell is None:
                cells.append("<td>&#8212;</td>")
            elif cell["leaked"]:
                leaks += 1
                cells.append('<td><span class="flag">LEAK</span> '
                             f'<span class="note">{cell["events"]} ev</span>'
                             '</td>')
            else:
                why = ", ".join(cell["blocked_by"]) or "no speculation"
                cells.append(f'<td><span class="ok">&#10003;</span> '
                             f'<span class="note">{_esc(why)}</span></td>')
        rows.append(f"<tr><td><code>{_esc(cpu)}</code></td>"
                    f"{''.join(cells)}</tr>")
    intro = (f'<p class="sub">run {matrix_run.id} &#183; policy '
             f'<code>{_esc(policy)}</code> &#183; {leaks} leaking cell(s). '
             f'Cells show the taint oracle&#8217;s verdict per '
             f'train&#8594;victim boundary: &#10003; = tainted data never '
             f'reached an observable channel (blocked-by attribution '
             f'inline), LEAK = leakage events were filed.</p>')
    return (head + intro +
            '<table><thead><tr><th>cpu</th>' + header +
            f"</tr></thead><tbody>{''.join(rows)}</tbody></table>")


def _section_fuzz(store: HistoryStore, runs: Sequence[RunInfo]) -> str:
    """Differential-fuzzing campaigns: corpus size, cells swept, and
    oracle verdict per recorded ``spectresim fuzz`` run."""
    head = '<h2 id="fuzz">Differential fuzzing</h2>'
    fuzz_runs = [run for run in runs if run.kind == "fuzz"]
    if not fuzz_runs:
        return (head + '<p class="note">no fuzz campaigns recorded yet '
                '&#8212; run <code>spectresim fuzz</code>.</p>')
    names = ("fuzz.seed", "fuzz.programs", "fuzz.cells", "fuzz.skipped",
             "fuzz.violations")
    trend = {name: dict(store.telemetry_trend(name)) for name in names}

    def cell(name: str, run_id: int) -> str:
        value = trend[name].get(run_id)
        return "&#8212;" if value is None else f"{int(value):,}"

    rows = []
    clean = 0
    for run in fuzz_runs:
        violations = trend["fuzz.violations"].get(run.id)
        if violations == 0:
            verdict = '<span class="ok">&#10003; clean</span>'
            clean += 1
        elif violations is None:
            verdict = "&#8212;"
        else:
            verdict = (f'<span class="flag">{int(violations)} '
                       f'violation(s)</span>')
        rows.append(
            f"<tr><td>{run.id}</td><td>{_esc(run.created_at)}</td>"
            f"<td class='num'>{cell('fuzz.seed', run.id)}</td>"
            f"<td class='num'>{cell('fuzz.programs', run.id)}</td>"
            f"<td class='num'>{cell('fuzz.cells', run.id)}</td>"
            f"<td class='num'>{cell('fuzz.skipped', run.id)}</td>"
            f"<td>{verdict}</td></tr>")
    intro = (f'<p class="sub">{len(fuzz_runs)} campaign(s) recorded, '
             f'{clean} clean. Each campaign sweeps a generated corpus '
             f'over the CPU &#215; policy grid against the engine-parity '
             f'and leakage-contract oracles (see docs/fuzzing.md); a '
             f'violation ships a minimized reproducer.</p>')
    return (head + intro +
            '<table><thead><tr><th>run</th><th>recorded</th>'
            '<th class="num">seed</th><th class="num">programs</th>'
            '<th class="num">cells</th><th class="num">skipped</th>'
            '<th>verdict</th></tr></thead>'
            f"<tbody>{''.join(rows)}</tbody></table>")


def _section_timeline(store: HistoryStore, runs: Sequence[RunInfo]) -> str:
    """Microarchitectural event-timeline runs: stream size, digest, and
    the first-divergence verdict per recorded ``spectresim explain``."""
    head = '<h2 id="timeline">Event timeline</h2>'
    explain_runs = [run for run in runs if run.kind == "explain"]
    if not explain_runs:
        return (head + '<p class="note">no explain runs recorded yet '
                '&#8212; run <code>spectresim explain</code>.</p>')
    names = ("timeline.events", "timeline.dropped", "timeline.digest",
             "timeline.diverged", "timeline.divergence_index",
             "timeline.divergence_tsc", "timeline.divergence_instr")
    trend = {name: dict(store.telemetry_trend(name)) for name in names}

    def num(name: str, run_id: int) -> str:
        value = trend[name].get(run_id)
        return "&#8212;" if value is None else f"{int(value):,}"

    rows = []
    agreeing = 0
    for run in explain_runs:
        diverged = trend["timeline.diverged"].get(run.id)
        if diverged == 0:
            verdict = '<span class="ok">&#10003; streams agree</span>'
            agreeing += 1
        elif diverged is None:
            verdict = "&#8212;"
        else:
            index = num("timeline.divergence_index", run.id)
            tsc = num("timeline.divergence_tsc", run.id)
            instr = num("timeline.divergence_instr", run.id)
            verdict = (f'<span class="flag">diverged</span> at event '
                       f'#{index} (tsc {tsc}, instr {instr})')
        digest = trend["timeline.digest"].get(run.id)
        digest_cell = ("&#8212;" if digest is None
                       else f"{int(digest):08x}")
        rows.append(
            f"<tr><td>{run.id}</td><td>{_esc(run.created_at)}</td>"
            f"<td class='num'>{num('timeline.events', run.id)}</td>"
            f"<td class='num'>{num('timeline.dropped', run.id)}</td>"
            f"<td class='num'><code>{digest_cell}</code></td>"
            f"<td>{verdict}</td></tr>")
    intro = (f'<p class="sub">{len(explain_runs)} explain run(s) recorded, '
             f'{agreeing} with agreeing streams. Each run records every '
             f'speculative-structure event (BTB, RSB, caches, TLB, '
             f'store buffer, MDS buffers) into the flight recorder and '
             f'binary-searches two streams to their first divergent event '
             f'(see docs/observability.md).</p>')
    return (head + intro +
            '<table><thead><tr><th>run</th><th>recorded</th>'
            '<th class="num">events</th><th class="num">dropped</th>'
            '<th class="num">digest</th>'
            '<th>verdict</th></tr></thead>'
            f"<tbody>{''.join(rows)}</tbody></table>")


def _section_waterfall(diff: Optional[RunDiff],
                       id_a: Optional[int], id_b: Optional[int]) -> str:
    head = '<h2 id="waterfall">Blame waterfall</h2>'
    if diff is None:
        return (head + '<p class="note">needs at least two recorded runs '
                'to diff</p>')
    intro = (f'<p class="sub">run {id_a} &#8594; run {id_b}: each changed '
             f'ledger cell decomposed into per-mitigation cycle deltas '
             f'(steps sum exactly to the cell&#8217;s TSC delta).</p>')
    if not diff.cells:
        return (head + intro +
                '<p class="ok">no ledger drift between these runs &#8212; '
                'attributed cycles are bit-identical.</p>')
    cards = []
    for cell in diff.cells:
        cards.append(
            f'<div class="card"><div class="title">{_esc(cell.cpu)} · '
            f'{cell.old_total:,} &#8594; {cell.new_total:,} cycles '
            f'({cell.delta:+,})</div>{_waterfall_svg(cell)}</div>')
    return head + intro + f'<div class="cards">{"".join(cards)}</div>'


def _section_annotations(diffs: Sequence[Tuple[int, int, RunDiff]],
                         runs: Sequence[RunInfo]) -> str:
    lines = []
    for run in runs:
        if run.dirty:
            lines.append(
                f'<li><span class="flag">dirty</span> run {run.id} was '
                f'recorded with <code>--allow-dirty</code>: its fingerprint '
                f'<code>{_esc(run.fingerprint or "&lt;missing&gt;")}</code> '
                f'does not match the code that recorded it.</li>')
    for id_a, id_b, diff in diffs:
        if diff.fingerprint_changed:
            old_fp, new_fp = diff.fingerprints
            lines.append(
                f'<li>code fingerprint changed between run {id_a} and run '
                f'{id_b}: <code>{_esc(old_fp or "?")}</code> &#8594; '
                f'<code>{_esc(new_fp or "?")}</code></li>')
        for delta in diff.regressions:
            lines.append(
                f'<li><span class="flag">regression</span> '
                f'<code>{_esc(delta.key)}</code> between run {id_a} and run '
                f'{id_b}: {_num(delta.old, 2)}% &#8594; {_num(delta.new, 2)}% '
                f'(allowed &#177;{_num(delta.allowed, 2)}pp)</li>')
        for drift in diff.ledger_regressions:
            lines.append(
                f'<li><span class="flag">ledger regression</span> '
                f'<code>{_esc(drift.cpu)}:{_esc(drift.path)}</code> between '
                f'run {id_a} and run {id_b}: {drift.old:,} &#8594; '
                f'{drift.new:,} cycles</li>')
    body = (f"<ul>{''.join(lines)}</ul>" if lines else
            '<p class="ok">no regressions, fingerprint changes, or dirty '
            'rows across the recorded history.</p>')
    return f'<h2 id="annotations">Regression annotations</h2>{body}'


def _section_runs_table(runs: Sequence[RunInfo]) -> str:
    rows = []
    for run in runs:
        dirty = '<span class="flag">yes</span>' if run.dirty else "no"
        wall = _num(run.wall_time_s, 2) if run.wall_time_s is not None \
            else "&#8212;"
        rows.append(
            f"<tr><td>{run.id}</td><td>{_esc(run.created_at)}</td>"
            f"<td>{_esc(run.command)}</td><td>{_esc(run.kind)}</td>"
            f"<td><code>{_esc(run.fingerprint or '&#8212;')}</code></td>"
            f"<td>{dirty}</td><td class='num'>{run.values}</td>"
            f"<td class='num'>{run.ledger_cycles:,}</td>"
            f"<td class='num'>{wall}</td></tr>")
    return (
        '<details open><summary>All recorded runs</summary>'
        '<table><thead><tr><th>id</th><th>recorded</th><th>command</th>'
        '<th>kind</th><th>fingerprint</th><th>dirty</th>'
        '<th class="num">values</th><th class="num">ledger cycles</th>'
        '<th class="num">wall s</th></tr></thead>'
        f"<tbody>{''.join(rows)}</tbody></table></details>")


# --------------------------------------------------------------------------- #
# Entry points
# --------------------------------------------------------------------------- #

def render_report(store: HistoryStore, title: str = "spectresim run history",
                  ) -> str:
    """The full dashboard as one self-contained HTML string."""
    runs = store.runs()
    run_ids = [run.id for run in runs]
    diffs: List[Tuple[int, int, RunDiff]] = []
    for id_a, id_b in zip(run_ids, run_ids[1:]):
        diffs.append((id_a, id_b, store.diff(id_a, id_b)))
    latest_diff = diffs[-1][2] if diffs else None
    latest_pair = (diffs[-1][0], diffs[-1][1]) if diffs else (None, None)
    newest = runs[-1].created_at if runs else "no runs recorded"
    body = [
        f"<h1>{_esc(title)}</h1>",
        f'<p class="sub">{len(runs)} recorded run(s) &#183; newest: '
        f"{_esc(newest)} &#183; db: <code>{_esc(store.path)}</code></p>",
        _section_self_perf(store, runs),
        _section_trends(store, run_ids),
        _section_mitigations(store, run_ids),
        _section_leakage(store, runs),
        _section_fuzz(store, runs),
        _section_timeline(store, runs),
        _section_waterfall(latest_diff, latest_pair[0], latest_pair[1]),
        _section_annotations(diffs, runs),
        _section_runs_table(runs),
    ]
    return ("<!DOCTYPE html>\n"
            '<html lang="en"><head><meta charset="utf-8">\n'
            f"<title>{_esc(title)}</title>\n"
            f"<style>{_CSS}</style>\n"
            '</head><body><div class="viz-root">\n'
            + "\n".join(body) +
            "\n</div></body></html>\n")


def write_report(store: HistoryStore, path: str,
                 title: str = "spectresim run history") -> str:
    text = render_report(store, title=title)
    with open(path, "w") as f:
        f.write(text)
    return path

"""Hierarchical span tracing over the simulated cycle timeline.

The attribution harness answers "how much did mitigation X cost?"; spans
answer the complementary question "where in the stack did the cycles go?".
A :class:`SpanTracer` keeps a single monotonically increasing **trace
clock**, measured in simulated cycles, that follows the timestamp counter
of whichever :class:`~repro.cpu.machine.Machine` is currently bound to it
(machines bind themselves at construction).  Opening a span records the
clock; closing it attributes the elapsed cycles — and the bound machine's
perf-counter deltas — to that span.  Spans nest, so a Figure 2 run
decomposes into ``study.figure2.broadwell`` > ``lebench.suite`` >
``lebench.case.getpid`` > ``kernel.syscall`` > ``kernel.entry`` and every
layer's share is visible.

Untraced runs pay (almost) nothing: the module-level default tracer is a
:class:`NullTracer` whose :meth:`~NullTracer.span` returns a shared no-op
context manager and whose hooks are empty methods.  Hot call sites
additionally gate on ``tracer.enabled`` so the untraced fast path is one
attribute load per boundary crossing.

Usage::

    from repro.obs import SpanTracer, use_tracer

    tracer = SpanTracer()
    with use_tracer(tracer):
        study.figure2([get_cpu("broadwell")], Settings.fast())
    print(tracer.coverage())          # fraction of cycles inside spans
    for span in tracer.find("kernel.syscall"):
        print(span.cycles, span.counter_delta)
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .metrics import MetricsRegistry

__all__ = [
    "NULL_TRACER",
    "NullSpan",
    "NullTracer",
    "Span",
    "SpanTracer",
    "current_tracer",
    "install_tracer",
    "use_tracer",
]


class NullSpan:
    """Shared do-nothing span: the zero-cost untraced path."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "NullSpan":
        return self


_NULL_SPAN = NullSpan()


class NullTracer:
    """Tracer that records nothing; installed by default.

    Every hook is a no-op, and :meth:`span` always hands back one shared
    :class:`NullSpan`, so instrumentation points cost an attribute lookup
    and a call — nothing allocates, nothing grows.
    """

    __slots__ = ()

    #: Hot call sites test this instead of building span kwargs.
    enabled = False

    def span(self, name: str, **attrs: Any) -> NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, **attrs: Any) -> None:
        return None

    def bind_machine(self, machine: Any) -> None:
        return None


NULL_TRACER = NullTracer()


class Span:
    """One named, timed region of a traced run.

    ``start``/``end`` are trace-clock values (simulated cycles since the
    tracer was created); ``cycles`` is their difference and
    ``self_cycles`` subtracts the children, which is what the flamegraph
    exporter plots.  ``counter_delta`` holds the bound machine's
    perf-counter movement across the span, when a single machine spanned
    the whole region.
    """

    __slots__ = ("name", "attrs", "start", "end", "parent", "children",
                 "counter_delta", "_tracer", "_machine", "_counters_before")

    def __init__(self, tracer: "SpanTracer", name: str,
                 attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.start: int = 0
        self.end: Optional[int] = None
        self.parent: Optional[Span] = None
        self.children: List[Span] = []
        self.counter_delta: Optional[Dict[str, int]] = None
        self._tracer = tracer
        self._machine: Any = None
        self._counters_before: Optional[Dict[str, int]] = None

    # -- context manager ------------------------------------------------- #

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.start = tracer.now()
        self.parent = tracer._stack[-1] if tracer._stack else None
        if self.parent is not None:
            self.parent.children.append(self)
        else:
            tracer.roots.append(self)
        tracer.spans.append(self)
        tracer._stack.append(self)
        machine = tracer._machine
        if machine is not None:
            self._machine = machine
            self._counters_before = machine.counters.snapshot()
        return self

    def __exit__(self, *exc: object) -> bool:
        tracer = self._tracer
        self.end = tracer.now()
        if tracer._stack and tracer._stack[-1] is self:
            tracer._stack.pop()
        machine = self._machine
        if machine is not None and machine is tracer._machine:
            self.counter_delta = machine.counters.delta(self._counters_before)
        self._machine = None
        self._counters_before = None
        tracer._finish(self)
        return False

    def set(self, **attrs: Any) -> "Span":
        """Attach extra attributes to an open span."""
        self.attrs.update(attrs)
        return self

    # -- derived --------------------------------------------------------- #

    @property
    def cycles(self) -> int:
        """Simulated cycles spent inside this span (children included)."""
        end = self.end if self.end is not None else self._tracer.now()
        return end - self.start

    @property
    def self_cycles(self) -> int:
        """Cycles spent in this span but not in any child span."""
        return self.cycles - sum(child.cycles for child in self.children)

    def path(self) -> Tuple[str, ...]:
        """Root-to-here span names (the flamegraph stack)."""
        names: List[str] = []
        node: Optional[Span] = self
        while node is not None:
            names.append(node.name)
            node = node.parent
        return tuple(reversed(names))

    @property
    def depth(self) -> int:
        return len(self.path()) - 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Span {self.name} cycles={self.cycles}>"


class SpanTracer:
    """Records nested spans against the simulated cycle clock.

    The trace clock advances by following the TSC of the most recently
    bound machine; when a new machine binds (study drivers create one
    machine per configuration), the old machine's elapsed cycles are
    folded into the clock base so the timeline stays monotonic across
    machine lifetimes.
    """

    enabled = True

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.roots: List[Span] = []
        self.spans: List[Span] = []            # every span, in start order
        self.instants: List[Tuple[int, str, Dict[str, Any]]] = []
        self._stack: List[Span] = []
        self._machine: Any = None
        self._bind_tsc: int = 0
        self._clock_base: int = 0

    # -- the trace clock ------------------------------------------------- #

    def now(self) -> int:
        """Trace-clock reading: simulated cycles since tracer creation."""
        if self._machine is None:
            return self._clock_base
        return self._clock_base + (self._machine.counters.tsc - self._bind_tsc)

    def bind_machine(self, machine: Any) -> None:
        """Adopt ``machine``'s TSC as the clock source.

        Called automatically from ``Machine.__init__``; the previously
        bound machine's elapsed cycles are retired into the clock base.
        """
        if machine is self._machine:
            return
        self._clock_base = self.now()
        self._machine = machine
        self._bind_tsc = machine.counters.tsc

    # -- recording ------------------------------------------------------- #

    def span(self, name: str, **attrs: Any) -> Span:
        """A context manager attributing enclosed cycles to ``name``."""
        return Span(self, name, attrs)

    def instant(self, name: str, **attrs: Any) -> None:
        """A zero-duration event (e.g. one transient window) at now()."""
        self.instants.append((self.now(), name, attrs))

    def _finish(self, span: Span) -> None:
        self.metrics.histogram(f"span.{span.name}.cycles").observe(span.cycles)

    def advance(self, cycles: int) -> None:
        """Retire ``cycles`` simulated elsewhere into the trace clock.

        Used when absorbing a child tracer: the worker's machines never
        bound to this tracer, so their cycles are folded in wholesale to
        keep :meth:`total_cycles` (and coverage) honest.
        """
        if cycles < 0:
            raise ValueError("cannot retire negative cycles")
        self._clock_base += cycles

    # -- cross-process transport ------------------------------------------ #

    def to_payload(self) -> Dict[str, Any]:
        """Serialize the complete timeline as plain JSON types.

        The inverse is :meth:`absorb`; together they carry a worker
        process's spans, instants and metrics back to the parent tracer.
        Open spans are closed at the current clock reading first.
        """
        index = {id(span): i for i, span in enumerate(self.spans)}
        spans = []
        for span in self.spans:
            spans.append({
                "name": span.name,
                "attrs": dict(span.attrs),
                "start": span.start,
                "end": span.end if span.end is not None else self.now(),
                "parent": index.get(id(span.parent)),
                "counter_delta": span.counter_delta,
            })
        return {
            "spans": spans,
            "instants": [[ts, name, dict(attrs)]
                         for ts, name, attrs in self.instants],
            "total_cycles": self.total_cycles(),
            "metrics": self.metrics.state(),
        }

    def absorb(self, payload: Dict[str, Any]) -> None:
        """Merge a child tracer's :meth:`to_payload` into this timeline.

        The child's spans are re-based at the current clock reading (its
        cycles happened "elsewhere", concurrently in wall time but on an
        independent simulated clock), its metrics fold into this
        registry, and the clock advances past its total so successive
        absorptions stay monotonic and coverage accounting holds.
        """
        base = self.now()
        rebuilt: List[Span] = []
        for record in payload["spans"]:
            span = Span(self, record["name"], dict(record["attrs"]))
            span.start = base + record["start"]
            span.end = base + record["end"]
            span.counter_delta = record["counter_delta"]
            parent_index = record["parent"]
            if parent_index is not None:
                span.parent = rebuilt[parent_index]
                span.parent.children.append(span)
            else:
                self.roots.append(span)
            rebuilt.append(span)
            self.spans.append(span)
        for ts, name, attrs in payload["instants"]:
            self.instants.append((base + ts, name, attrs))
        self.advance(payload["total_cycles"])
        self.metrics.merge_state(payload["metrics"])

    # -- queries --------------------------------------------------------- #

    def total_cycles(self) -> int:
        """Every simulated cycle the clock saw, attributed or not."""
        return self.now()

    def attributed_cycles(self) -> int:
        """Cycles covered by at least one (root) span."""
        return sum(root.cycles for root in self.roots)

    def coverage(self) -> float:
        """Fraction of simulated cycles inside named spans (0..1)."""
        total = self.total_cycles()
        if total <= 0:
            return 1.0 if not self.roots else 0.0
        return min(1.0, self.attributed_cycles() / total)

    def find(self, name: str) -> List[Span]:
        """All completed or open spans with ``name``, in start order."""
        return [span for span in self.spans if span.name == name]

    def self_cycles_by_name(self) -> Dict[str, int]:
        """Aggregate self-cycles per span name (profile-style rollup)."""
        out: Dict[str, int] = {}
        for span in self.spans:
            out[span.name] = out.get(span.name, 0) + span.self_cycles
        return out

    def report(self, top: int = 12) -> str:
        """Aligned text rollup of where the cycles went."""
        total = self.total_cycles()
        lines = [
            f"{len(self.spans)} spans, {total} simulated cycles, "
            f"{100.0 * self.coverage():.1f}% attributed"
        ]
        ranked = sorted(self.self_cycles_by_name().items(),
                        key=lambda pair: pair[1], reverse=True)
        for name, self_cycles in ranked[:top]:
            share = 100.0 * self_cycles / total if total else 0.0
            lines.append(f"  {name:40s} {self_cycles:>12d} self-cycles "
                         f"({share:5.1f}%)")
        if self.instants:
            lines.append(f"  {len(self.instants)} instant events")
        return "\n".join(lines) + "\n"


# --------------------------------------------------------------------------- #
# The installed tracer
# --------------------------------------------------------------------------- #

_current: "NullTracer | SpanTracer" = NULL_TRACER


def current_tracer() -> "NullTracer | SpanTracer":
    """The tracer new machines and kernels will report to."""
    return _current


def install_tracer(tracer: "NullTracer | SpanTracer") -> "NullTracer | SpanTracer":
    """Replace the installed tracer; returns the previous one."""
    global _current
    previous = _current
    _current = tracer
    return previous


@contextmanager
def use_tracer(tracer: "NullTracer | SpanTracer") -> Iterator["NullTracer | SpanTracer"]:
    """Install ``tracer`` for the duration of the ``with`` body."""
    previous = install_tracer(tracer)
    try:
        yield tracer
    finally:
        install_tracer(previous)

"""A unified metrics registry: counters, gauges, histograms.

The simulator already produces numbers in three disconnected places — the
per-machine :class:`~repro.cpu.counters.PerfCounters` bag, study-level
:class:`~repro.core.stats.Measurement` results, and ad-hoc tallies inside
workload runners.  The :class:`MetricsRegistry` gives them one queryable
namespace with Prometheus-style instrument types, so exporters (and tests)
can ask "what did this run record?" without knowing which layer produced
each number.

Naming convention: dot-separated lowercase paths, layer first —
``cpu.<counter>`` for bridged perf counters, ``span.<name>.cycles`` for
tracer histograms, ``study.<metric>`` for measurement statistics.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default histogram bucket upper bounds: exponential, covering one cycle
#: up to a billion (a full slow Octane part), plus the +Inf overflow.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    float(10 ** exp) * mult for exp in range(0, 9) for mult in (1, 3)
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "_value")
    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def collect(self) -> int:
        return self._value


class Gauge:
    """A value that goes up and down, or is computed on read."""

    __slots__ = ("name", "help", "_value", "_fn")
    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value: float = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self._fn = None
        self._value = value

    def set_function(self, fn: Callable[[], float]) -> None:
        """Compute the gauge lazily at collection time."""
        self._fn = fn

    @property
    def value(self) -> float:
        return self._fn() if self._fn is not None else self._value

    def collect(self) -> float:
        return self.value


class Histogram:
    """Bucketed distribution of observed values.

    Buckets are cumulative-style upper bounds (Prometheus ``le``); every
    observation also feeds ``sum``/``count``/``min``/``max`` so cheap
    summary statistics survive even when the bucketing is coarse.
    """

    __slots__ = ("name", "help", "bounds", "bucket_counts", "count", "sum",
                 "min", "max")
    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 bounds: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.help = help
        self.bounds: Tuple[float, ...] = tuple(sorted(bounds or DEFAULT_BUCKETS))
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        holding the q-th observation); exact min/max at the extremes."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return float(self.min)  # type: ignore[arg-type]
        target = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            seen += bucket_count
            if seen >= target:
                if index >= len(self.bounds):
                    return float(self.max)  # type: ignore[arg-type]
                return self.bounds[index]
        return float(self.max)  # type: ignore[arg-type]

    def collect(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """One namespace for every instrument a run creates.

    ``counter``/``gauge``/``histogram`` create-or-return by name;
    requesting an existing name as a different instrument type is an
    error (the namespace is flat and typed).
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}

    def _get_or_create(self, cls: type, name: str, **kwargs: Any) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name, **kwargs)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{instrument.kind}, not {cls.kind}"  # type: ignore[attr-defined]
            )
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help=help)

    def histogram(self, name: str, help: str = "",
                  bounds: Optional[Sequence[float]] = None) -> Histogram:
        return self._get_or_create(Histogram, name, help=help, bounds=bounds)

    # -- namespace queries ----------------------------------------------- #

    def names(self, prefix: str = "") -> List[str]:
        return sorted(n for n in self._instruments if n.startswith(prefix))

    def get(self, name: str) -> Optional[Any]:
        return self._instruments.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def collect(self, prefix: str = "") -> Dict[str, Any]:
        """Flat ``name -> value`` mapping (histograms collect to dicts)."""
        return {name: self._instruments[name].collect()
                for name in self.names(prefix)}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.collect(), indent=indent, sort_keys=True)

    # -- cross-process transport ------------------------------------------ #

    def state(self) -> Dict[str, Dict[str, Any]]:
        """Full lossless dump of every instrument, for transport between
        processes (unlike :meth:`collect`, which summarizes histograms).
        """
        out: Dict[str, Dict[str, Any]] = {}
        for name, inst in self._instruments.items():
            if inst.kind == "histogram":
                out[name] = {
                    "kind": "histogram",
                    "bounds": list(inst.bounds),
                    "bucket_counts": list(inst.bucket_counts),
                    "count": inst.count,
                    "sum": inst.sum,
                    "min": inst.min,
                    "max": inst.max,
                }
            else:
                out[name] = {"kind": inst.kind, "value": inst.value}
        return out

    def merge_state(self, state: Dict[str, Dict[str, Any]]) -> None:
        """Fold another registry's :meth:`state` into this one.

        Counters and gauges accumulate additively (matching the
        :meth:`merge_perf_counters` semantics for machines that come and
        go); histograms merge bucket-by-bucket and therefore require
        matching bucket bounds.  This is how worker-process tracers from
        the parallel study executor report back to the parent registry.
        """
        for name, dump in state.items():
            kind = dump["kind"]
            if kind == "counter":
                self.counter(name).inc(dump["value"])
            elif kind == "gauge":
                gauge = self.gauge(name)
                gauge.set(gauge.value + dump["value"])
            elif kind == "histogram":
                hist = self.histogram(name, bounds=dump["bounds"])
                if list(hist.bounds) != list(dump["bounds"]):
                    raise ValueError(
                        f"histogram {name!r} bucket bounds differ; "
                        f"cannot merge")
                for index, bucket_count in enumerate(dump["bucket_counts"]):
                    hist.bucket_counts[index] += bucket_count
                hist.count += dump["count"]
                hist.sum += dump["sum"]
                if dump["min"] is not None and (hist.min is None
                                                or dump["min"] < hist.min):
                    hist.min = dump["min"]
                if dump["max"] is not None and (hist.max is None
                                                or dump["max"] > hist.max):
                    hist.max = dump["max"]
            else:
                raise ValueError(f"unknown instrument kind {kind!r}")

    # -- bridges from the existing layers --------------------------------- #

    def merge_perf_counters(self, counters: Any, prefix: str = "cpu") -> None:
        """Fold a :class:`PerfCounters` bag into the namespace as gauges.

        Gauges (not counters) because machines come and go within a run:
        merging the same machine twice must not double-count, so each
        merge accumulates into ``<prefix>.<event>`` against the snapshot
        semantics the caller chooses.
        """
        for event, value in counters.snapshot().items():
            gauge = self.gauge(f"{prefix}.{event}")
            gauge.set(gauge.value + value)
        tsc = self.gauge(f"{prefix}.tsc")
        tsc.set(tsc.value + counters.tsc)

    def record_measurement(self, name: str, measurement: Any) -> None:
        """Expose a study-level :class:`Measurement` as gauges."""
        self.gauge(f"{name}.mean").set(measurement.mean)
        self.gauge(f"{name}.ci_half_width").set(measurement.ci_half_width)
        self.gauge(f"{name}.samples").set(measurement.samples)

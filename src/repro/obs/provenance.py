"""Run provenance: the manifest stamped into every exported artifact.

A result file that cannot say which seed, CPU models, mitigation
configuration and package version produced it is a liability — the
paper's own methodology section exists because "what exactly was running"
is most of the reproduction problem.  :class:`RunManifest` captures that
context once, and the exporters embed it next to the results.

JSON artifacts become envelopes::

    {"provenance": {...}, "results": [...]}

CSV artifacts carry the manifest as ``#``-prefixed comment lines above
the header row, so naive parsers that skip comments keep working.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import os
import platform
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "RunManifest",
    "build_manifest",
    "code_fingerprint",
    "fingerprint_inputs",
    "config_to_dict",
    "settings_to_dict",
    "stamp_payload",
    "manifest_comment_lines",
]

#: Version of the manifest schema itself, so downstream tooling can detect
#: layout changes without sniffing fields.
SCHEMA_VERSION = 1


def _package_version() -> str:
    # Imported lazily: this module is loaded while ``repro.__init__`` is
    # still executing (machine -> obs), so a top-level import would see a
    # partially initialised package.
    from .. import __version__
    return __version__


def fingerprint_inputs() -> List[str]:
    """The package-relative paths folded into :func:`code_fingerprint`.

    Every ``.py`` file under the installed ``repro`` package, in the
    hashing order.  Exposed so tests can assert that execution-affecting
    modules (e.g. ``cpu/engine.py``, whose block compiler now sits on the
    simulation hot path) participate in the persistent-cache key — a
    module missing from this list could change simulated results without
    invalidating cached cells.
    """
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    paths: List[str] = []
    for dirpath, dirnames, filenames in sorted(os.walk(package_root)):
        dirnames.sort()
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                path = os.path.join(dirpath, filename)
                paths.append(os.path.relpath(path, package_root))
    return paths


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Content hash of the installed ``repro`` package source.

    The release version alone cannot key a persistent result cache: two
    development checkouts of the same version can simulate differently.
    Hashing every ``.py`` file of the package (path + bytes, in sorted
    order — see :func:`fingerprint_inputs`) gives a fingerprint that
    changes whenever the code that produced a cached result changes.
    Computed once per process.
    """
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    digest = hashlib.sha256()
    for relpath in fingerprint_inputs():
        digest.update(relpath.encode())
        with open(os.path.join(package_root, relpath), "rb") as f:
            digest.update(f.read())
    return digest.hexdigest()[:16]


def config_to_dict(config: Any) -> Dict[str, Any]:
    """A :class:`MitigationConfig` as plain JSON types (enums -> values)."""
    out: Dict[str, Any] = {}
    for f in dataclasses.fields(config):
        value = getattr(config, f.name)
        out[f.name] = value.value if hasattr(value, "value") else value
    return out


def settings_to_dict(settings: Any) -> Dict[str, Any]:
    """A :class:`~repro.core.study.Settings` as plain JSON types."""
    return dict(dataclasses.asdict(settings))


@dataclass(frozen=True)
class RunManifest:
    """Everything needed to re-run (or distrust) one exported artifact."""

    command: str                           # e.g. "export figure2 --fast"
    seed: Optional[int]
    cpus: List[str]
    config: Optional[Dict[str, Any]]       # per-cpu or single config dict
    settings: Optional[Dict[str, Any]]
    version: str
    schema_version: int = SCHEMA_VERSION
    created_at: str = ""
    python: str = ""
    platform: str = ""
    wall_time_s: Optional[float] = None
    sim_cycles: Optional[int] = None
    code_fingerprint: str = ""
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out = dataclasses.asdict(self)
        extra = out.pop("extra")
        out.update(extra)
        return out


def build_manifest(
    command: str,
    seed: Optional[int] = None,
    cpus: Optional[Sequence[str]] = None,
    config: Optional[Dict[str, Any]] = None,
    settings: Optional[Any] = None,
    wall_time_s: Optional[float] = None,
    sim_cycles: Optional[int] = None,
    **extra: Any,
) -> RunManifest:
    """Assemble a manifest, filling in environment fields automatically.

    ``settings`` may be a :class:`~repro.core.study.Settings` (converted,
    and its seed adopted when ``seed`` is not given) or a plain dict.
    """
    settings_dict: Optional[Dict[str, Any]]
    if settings is None:
        settings_dict = None
    elif isinstance(settings, dict):
        settings_dict = dict(settings)
    else:
        settings_dict = settings_to_dict(settings)
    if seed is None and settings_dict is not None:
        seed = settings_dict.get("seed")
    return RunManifest(
        command=command,
        seed=seed,
        cpus=list(cpus or []),
        config=config,
        settings=settings_dict,
        version=_package_version(),
        created_at=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        python=platform.python_version(),
        platform=platform.platform(),
        wall_time_s=wall_time_s,
        sim_cycles=sim_cycles,
        code_fingerprint=code_fingerprint(),
        extra=dict(extra),
    )


def stamp_payload(results: Any, manifest: RunManifest) -> Dict[str, Any]:
    """Wrap ``results`` in the provenance envelope used by JSON exports."""
    return {"provenance": manifest.to_dict(), "results": results}


def manifest_comment_lines(manifest: RunManifest) -> List[str]:
    """The manifest as ``# key: value`` lines for CSV headers."""
    lines = [f"# provenance schema v{manifest.schema_version}"]
    data = manifest.to_dict()
    for key in ("command", "seed", "cpus", "version", "created_at"):
        lines.append(f"# {key}: {data[key]}")
    if manifest.config is not None:
        lines.append(f"# config: {manifest.config}")
    return lines

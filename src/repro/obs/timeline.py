"""Microarchitectural event timeline: a bounded flight recorder.

The cycle ledger answers *how much* a mitigation cost and the leakage
tracer answers *whether* taint escaped; this module records the ordered
sequence of structure-state transitions that produced either number.
Every speculative structure — BTB, RSB, conditional predictor, TLB, the
L1/L2 hierarchy, the store buffer and the MDS fill/store/load-port
buffers — reports structured events (train/evict/flush/hit/miss/
forward/drain) into an :class:`EventTimeline`, each stamped with the
simulated TSC, the privilege mode and the retired-instruction index at
the moment it fired.

Design constraints, mirrored from :mod:`repro.obs.leakage`:

* **Opt-in and cheap when off.**  The timeline reuses the leakage
  tracer's single ``observer`` slot per structure, so the detached cost
  stays one ``is None`` test per hook site (enforced by
  ``benchmarks/bench_obs_overhead.py``).  When both a leakage tracer and
  a timeline attach to one machine, a :class:`TeeObserver` fans the slot
  out to both — the hot path still performs a single identity test.
* **Bounded.**  Events land in a ring buffer (``collections.deque`` with
  ``maxlen``): once ``capacity`` events are held, each new event evicts
  the oldest and bumps ``dropped``.  Memory is bounded by the ring size
  regardless of run length; pass ``capacity=None`` for the unbounded
  diagnosis mode the fuzz explainer uses.
* **Engine composition.**  Like the leakage tracer, an attached timeline
  routes ``Machine.run`` to the interpreter — batched block-engine
  replay deduplicates LRU touches and collapses MDS residue, so it
  cannot reproduce the per-event stream.  The interpreted fallback is
  bit-identical by the engine's differential contract, so the event
  stream under ``--engine=block`` equals the one under
  ``--engine=interp`` (asserted in the differential grid).
* **Parallel transport.**  Worker timelines ship home through
  ``state()`` / ``merge_state()`` like spans, ledgers and taints.

On top of the recorder sits the **first-divergence differ**
(:func:`first_divergence`): given two timelines it binary-searches
prefix-hash chains to the earliest event where the streams disagree and
returns the surrounding window with structure-state context.  The fuzz
harness's engine-parity oracle uses it to pinpoint the exact faulted
instruction of an injected parity fault, and ``spectresim explain``
renders it.
"""

from __future__ import annotations

import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from collections import deque

#: Default ring capacity: enough for a syscall-heavy kernel benchmark
#: window while keeping an attached recorder's memory footprint small.
DEFAULT_CAPACITY = 4096

#: The retired-instruction counter key (mirrors repro.cpu.counters;
#: duplicated here so the obs package never imports the CPU catalog at
#: import time).
RETIRED_COUNTER = "inst_retired.any"

LINE = 64


@dataclass
class TimelineEvent:
    """One structure-state transition.

    ``seq`` is the timeline-local monotonic index (survives ring
    eviction), ``structure``/``action``/``key`` identify the transition
    (``btb.train``, ``cache.miss``, ...), and ``tsc``/``mode``/``instr``
    pin when it happened: simulated TSC, privilege mode, and the number
    of instructions retired when the event fired.
    """

    seq: int
    structure: str
    action: str
    key: str
    tsc: int
    mode: str
    instr: int

    def path(self) -> str:
        return f"{self.structure}.{self.action}"

    def signature(self) -> tuple:
        """Identity for stream comparison: everything but ``seq``."""
        return (self.structure, self.action, self.key, self.tsc,
                self.mode, self.instr)

    def render(self) -> str:
        return (f"tsc={self.tsc:<8} instr={self.instr:<6} "
                f"mode={self.mode:<12} {self.path()} {self.key}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "structure": self.structure,
            "action": self.action,
            "key": self.key,
            "tsc": self.tsc,
            "mode": self.mode,
            "instr": self.instr,
        }


class TeeObserver:
    """Fan one structure's single observer slot out to two observers.

    ``first`` is the previously installed observer (in practice the
    leakage tracer) and ``timeline`` the event recorder.  Hook methods
    are materialized lazily per name and cached on the instance, calling
    ``first`` only when it implements the hook — the leakage tracer
    predates some timeline-only hooks.
    """

    def __init__(self, first: Any, timeline: "EventTimeline") -> None:
        self.first = first
        self.timeline = timeline

    def __getattr__(self, name: str):
        if name.startswith("__"):
            raise AttributeError(name)
        first_fn = getattr(self.first, name, None)
        timeline_fn = getattr(self.timeline, name)
        if first_fn is None:
            fan = timeline_fn
        else:
            def fan(*args: Any) -> None:
                first_fn(*args)
                timeline_fn(*args)
        # Cache so later dispatches are one instance-dict lookup.
        object.__setattr__(self, name, fan)
        return fan


class EventTimeline:
    """Bounded ring-buffer flight recorder over one machine's structures.

    ``capacity`` bounds held events (``None`` = unbounded, for the
    explainer's exact-replay diagnosis); ``counts`` aggregates every
    event ever filed (never truncated), which is what ships across
    process boundaries via :meth:`state`.
    """

    enabled = True

    def __init__(self, capacity: Optional[int] = DEFAULT_CAPACITY) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("timeline capacity must be >= 1 (or None)")
        self.capacity = capacity
        self._events: "deque[TimelineEvent]" = deque(maxlen=capacity)
        self.seq = 0
        self.dropped = 0
        #: "structure.action" -> count over all events (never truncated).
        self.counts: Dict[str, int] = {}
        self.cpu_model = "unknown"
        self._machine: Any = None

    # -- wiring ----------------------------------------------------------- #

    def bind_machine(self, machine: Any) -> None:
        """Adopt ``machine``: observe all of its speculative structures.

        Composes with an already-attached leakage tracer by installing a
        :class:`TeeObserver` in the shared slot; rebinding is idempotent.
        """
        self._machine = machine
        self.cpu_model = machine.cpu.key
        for structure in (machine.store_buffer, machine.caches,
                          machine.tlb, machine.btb, machine.rsb,
                          machine.mds_buffers, machine.cond_predictor):
            existing = structure.observer
            if existing is None or existing is self:
                structure.observer = self
            elif isinstance(existing, TeeObserver):
                existing.timeline = self
            else:
                structure.observer = TeeObserver(existing, self)

    # -- internals ---------------------------------------------------------- #

    def _file(self, structure: str, action: str, key: str) -> None:
        if not self.enabled:
            return
        machine = self._machine
        if machine is None:
            tsc, mode, instr = 0, "?", 0
        else:
            counters = machine.counters
            tsc = counters.tsc
            mode = machine.mode.value
            instr = counters.events.get(RETIRED_COUNTER, 0)
        events = self._events
        if events.maxlen is not None and len(events) == events.maxlen:
            self.dropped += 1
        events.append(TimelineEvent(self.seq, structure, action, key,
                                    tsc, mode, instr))
        self.seq += 1
        path = f"{structure}.{action}"
        self.counts[path] = self.counts.get(path, 0) + 1

    # -- store buffer observer ---------------------------------------------- #

    def sb_push(self, address: int, value: int) -> None:
        self._file("store_buffer", "push", f"line={address // LINE:#x}")

    def sb_drain(self) -> None:
        self._file("store_buffer", "drain", "all")

    def sb_bypass(self, address: int, possible: bool) -> None:
        self._file("store_buffer", "bypass",
                   f"line={address // LINE:#x} possible={int(possible)}")

    def sb_forward(self, address: int) -> None:
        self._file("store_buffer", "forward", f"line={address // LINE:#x}")

    # -- cache / TLB observers ----------------------------------------------- #

    def cache_fill(self, address: int, level: int) -> None:
        if level == 1:
            action, where = "hit", "l1"
        elif level == 2:
            action, where = "hit", "l2"
        else:
            action, where = "miss", "mem"
        self._file("cache", action, f"line={address // LINE:#x} {where}")

    def cache_flush(self, address: int) -> None:
        self._file("cache", "flush", f"line={address // LINE:#x}")

    def cache_flush_l1(self) -> None:
        self._file("cache", "flush", "l1")

    def tlb_fill(self, page: int) -> None:
        self._file("tlb", "fill", f"page={page:#x}")

    def tlb_flush(self, invalidated: int) -> None:
        self._file("tlb", "flush", f"invalidated={invalidated}")

    # -- predictor observers -------------------------------------------------- #

    def btb_train(self, pc: int, target: int, mode: Any) -> None:
        self._file("btb", "train",
                   f"pc={pc:#x}->{target:#x} mode={mode.value}")

    def btb_barrier(self) -> None:
        self._file("btb", "flush", "ibpb")

    def btb_flush(self) -> None:
        self._file("btb", "flush", "all")

    def cond_update(self, pc: int, taken: bool, state: int) -> None:
        self._file("cond", "train",
                   f"pc={pc:#x} taken={int(taken)} state={state}")

    def cond_flush(self) -> None:
        self._file("cond", "flush", "all")

    def rsb_push(self, return_address: int) -> None:
        self._file("rsb", "push", f"ra={return_address:#x}")

    def rsb_pop(self) -> None:
        self._file("rsb", "pop", "top")

    def rsb_stuff(self) -> None:
        self._file("rsb", "fill", "stuff")

    def rsb_clear(self) -> None:
        self._file("rsb", "flush", "all")

    # -- MDS buffer observers -------------------------------------------------- #

    def residue_load(self, value: int, mode: Any) -> None:
        self._file("mds", "fill", f"load value={value:#x} mode={mode.value}")

    def residue_store(self, value: int, mode: Any) -> None:
        self._file("mds", "fill", f"store value={value:#x} mode={mode.value}")

    def residue_clear(self) -> None:
        self._file("mds", "drain", "verw")

    # -- views ---------------------------------------------------------------- #

    @property
    def events(self) -> List[TimelineEvent]:
        """Held events, oldest first (at most ``capacity``)."""
        return list(self._events)

    @property
    def total(self) -> int:
        """Events ever filed (held + dropped + merged)."""
        return self.seq

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [event.to_dict() for event in self._events]

    def digest(self) -> int:
        """CRC32 over held event signatures: a cheap stream identity."""
        acc = 0
        for event in self._events:
            acc = zlib.crc32(repr(event.signature()).encode(), acc)
        return acc

    def structure_counts(self) -> Dict[str, int]:
        """Events per structure (aggregated over actions)."""
        totals: Dict[str, int] = {}
        for path, count in self.counts.items():
            structure = path.split(".", 1)[0]
            totals[structure] = totals.get(structure, 0) + count
        return totals

    def stats(self) -> Dict[str, Any]:
        """Machine-readable counterpart of :meth:`summary`."""
        return {
            "total": self.total,
            "held": len(self._events),
            "dropped": self.dropped,
            "capacity": self.capacity,
            "digest": self.digest(),
            "counts": dict(self.counts),
        }

    def summary(self) -> str:
        held = len(self._events)
        parts = [f"{self.total} event(s), {held} held, "
                 f"{self.dropped} dropped (ring="
                 f"{self.capacity if self.capacity is not None else 'inf'})"]
        counts = self.structure_counts()
        if counts:
            parts.append(", ".join(f"{name}={counts[name]}"
                                   for name in sorted(counts)))
        return "; ".join(parts)

    # -- worker transport -------------------------------------------------------- #

    def state(self) -> Dict[str, Any]:
        """Picklable snapshot for executor workers (see merge_state)."""
        return {
            "counts": dict(self.counts),
            "total": self.seq,
            "dropped": self.dropped,
            "events": self.to_dicts(),
        }

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Absorb a worker timeline's state into this one.

        Aggregate counts add; the worker's held events append to the
        ring (evicting through the same bounded path as live events).
        """
        for path, count in state.get("counts", {}).items():
            self.counts[path] = self.counts.get(path, 0) + int(count)
        self.dropped += int(state.get("dropped", 0))
        events = self._events
        for payload in state.get("events", ()):
            if events.maxlen is not None and len(events) == events.maxlen:
                self.dropped += 1
            events.append(TimelineEvent(**payload))
        self.seq += int(state.get("total", 0))


# --------------------------------------------------------------------------- #
# First-divergence differ
# --------------------------------------------------------------------------- #

TimelineLike = Union[EventTimeline, Sequence[TimelineEvent]]


@dataclass
class Divergence:
    """The earliest disagreement between two event streams.

    ``index`` is the position of the first differing event (events
    before it are identical on both sides); ``event_a``/``event_b`` are
    the disagreeing events (``None`` when that side's stream ended);
    the windows hold the surrounding events and ``counts``/``last_seen``
    give structure-state context over the common prefix.
    """

    index: int
    event_a: Optional[TimelineEvent]
    event_b: Optional[TimelineEvent]
    window_a: List[TimelineEvent] = field(default_factory=list)
    window_b: List[TimelineEvent] = field(default_factory=list)
    #: "structure.action" -> count over the identical common prefix.
    counts: Dict[str, int] = field(default_factory=dict)
    #: structure -> last event of that structure before the divergence.
    last_seen: Dict[str, TimelineEvent] = field(default_factory=dict)

    def _anchor(self) -> Optional[TimelineEvent]:
        return self.event_b if self.event_b is not None else self.event_a

    @property
    def structure(self) -> str:
        event = self._anchor()
        return event.structure if event is not None else ""

    @property
    def tsc(self) -> int:
        event = self._anchor()
        return event.tsc if event is not None else -1

    @property
    def instr(self) -> int:
        event = self._anchor()
        return event.instr if event is not None else -1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "structure": self.structure,
            "tsc": self.tsc,
            "instr": self.instr,
            "event_a": (self.event_a.to_dict()
                        if self.event_a is not None else None),
            "event_b": (self.event_b.to_dict()
                        if self.event_b is not None else None),
            "window_a": [e.to_dict() for e in self.window_a],
            "window_b": [e.to_dict() for e in self.window_b],
            "counts": dict(self.counts),
            "last_seen": {structure: event.to_dict()
                          for structure, event in self.last_seen.items()},
        }


def _event_list(source: TimelineLike) -> List[TimelineEvent]:
    if isinstance(source, EventTimeline):
        return source.events
    return list(source)


def first_divergence(a: TimelineLike, b: TimelineLike,
                     window: int = 8) -> Optional[Divergence]:
    """Earliest event where two streams disagree, or ``None`` if equal.

    Builds CRC32 prefix-hash chains over the event signatures and
    binary-searches them for the longest equal prefix — prefix-hash
    equality is monotone along the chain, so the search is sound; a
    final forward walk guards against hash collisions.
    """
    events_a = _event_list(a)
    events_b = _event_list(b)
    sig_a = [event.signature() for event in events_a]
    sig_b = [event.signature() for event in events_b]
    n = min(len(sig_a), len(sig_b))
    hash_a = [0] * (n + 1)
    hash_b = [0] * (n + 1)
    for i in range(n):
        hash_a[i + 1] = zlib.crc32(repr(sig_a[i]).encode(), hash_a[i])
        hash_b[i + 1] = zlib.crc32(repr(sig_b[i]).encode(), hash_b[i])
    if hash_a[n] == hash_b[n]:
        # Common prefix of length n agrees (w.h.p.); confirm and handle
        # a length mismatch where one stream simply ended.
        if len(sig_a) == len(sig_b) and sig_a == sig_b:
            return None
        index = n
    else:
        lo, hi = 0, n  # hashes equal at lo, different at hi
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if hash_a[mid] == hash_b[mid]:
                lo = mid
            else:
                hi = mid
        index = lo
    # Collision guard / exact-index confirmation: walk forward from the
    # candidate to the true first differing signature.
    while index < n and sig_a[index] == sig_b[index]:
        index += 1
    if index >= len(sig_a) and index >= len(sig_b):
        return None
    event_a = events_a[index] if index < len(events_a) else None
    event_b = events_b[index] if index < len(events_b) else None
    lo_w = max(0, index - window)
    hi_w = index + window + 1
    counts: Dict[str, int] = {}
    last_seen: Dict[str, TimelineEvent] = {}
    for event in events_a[:index]:
        path = event.path()
        counts[path] = counts.get(path, 0) + 1
        last_seen[event.structure] = event
    return Divergence(index=index, event_a=event_a, event_b=event_b,
                      window_a=events_a[lo_w:hi_w],
                      window_b=events_b[lo_w:hi_w],
                      counts=counts, last_seen=last_seen)


def render_divergence(divergence: Optional[Divergence],
                      label_a: str = "A", label_b: str = "B") -> str:
    """Human-readable report for one divergence (or stream identity)."""
    if divergence is None:
        return "event streams are identical\n"
    lines = [f"first divergence at event #{divergence.index} "
             f"(structure={divergence.structure or '?'} "
             f"tsc={divergence.tsc} instr={divergence.instr})"]
    for label, event in ((label_a, divergence.event_a),
                         (label_b, divergence.event_b)):
        rendered = event.render() if event is not None else "<stream ended>"
        lines.append(f"  {label}: {rendered}")
    if divergence.last_seen:
        lines.append("structure state before divergence:")
        for structure in sorted(divergence.last_seen):
            lines.append(f"  {structure}: last "
                         f"{divergence.last_seen[structure].render()}")
    if divergence.counts:
        rendered_counts = ", ".join(
            f"{path}={divergence.counts[path]}"
            for path in sorted(divergence.counts))
        lines.append(f"common-prefix event counts: {rendered_counts}")
    for label, window in ((label_a, divergence.window_a),
                          (label_b, divergence.window_b)):
        lines.append(f"window [{label}]:")
        for event in window:
            diverging = (event is divergence.event_a
                         or event is divergence.event_b)
            marker = ">" if diverging else " "
            lines.append(f"  {marker} #{event.seq} {event.render()}")
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------------- #
# Ambient installation (mirrors obs.spans / obs.ledger / obs.leakage)
# --------------------------------------------------------------------------- #

_current: Optional[EventTimeline] = None


def current_timeline() -> Optional[EventTimeline]:
    """The ambient timeline new machines adopt (None = recording off)."""
    return _current


def install_timeline(timeline: Optional[EventTimeline]
                     ) -> Optional[EventTimeline]:
    """Install ``timeline`` as ambient; returns the previous one."""
    global _current
    previous = _current
    _current = timeline
    return previous


@contextmanager
def use_timeline(timeline: EventTimeline) -> Iterator[EventTimeline]:
    """Scoped ambient installation."""
    previous = install_timeline(timeline)
    try:
        yield timeline
    finally:
        install_timeline(previous)

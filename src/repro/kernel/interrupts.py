"""Interrupts and preemptive scheduling.

Two paper-relevant facts live on the interrupt path:

* interrupts are boundary crossings too — the same mitigation work as a
  syscall (lfence, cr3 swap, verw) rides on every tick, which is how
  "always on" mitigations reach even the PARSEC-style workloads of
  section 4.5 (at a rate too low to matter, which the model reproduces);
* an interrupt can land *in the middle of a user retpoline sequence*,
  which is exactly why Linux refills the RSB on context switches
  (section 5.3: "if the operating system triggers a context switch at an
  inopportune time then this condition might be violated").  The
  :func:`interrupted_retpoline_is_safe` demo makes that scenario
  concrete.

:class:`InterruptController` dispatches vectors through the kernel's
exception path; :class:`TimesliceScheduler` runs a task set round-robin
with a periodic tick, producing the preemption pattern the LEBench
context-switch cases approximate from above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..cpu import isa
from ..cpu.machine import Machine
from ..errors import ConfigurationError
from .kernel import Kernel
from .process import Process
from .syscalls import HandlerProfile

#: Architectural vector numbers we model.
TIMER_VECTOR = 0x20
DEVICE_VECTOR = 0x21

#: Default handler work per vector.
TIMER_HANDLER = HandlerProfile("irq_timer", work_cycles=700, loads=8,
                               stores=4, indirect_branches=3)
DEVICE_HANDLER = HandlerProfile("irq_device", work_cycles=1500, loads=16,
                                stores=8, indirect_branches=5)


class InterruptController:
    """Dispatches interrupt vectors through the kernel's exception path."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self._handlers: Dict[int, HandlerProfile] = {
            TIMER_VECTOR: TIMER_HANDLER,
            DEVICE_VECTOR: DEVICE_HANDLER,
        }
        self.delivered: Dict[int, int] = {}

    def register(self, vector: int, handler: HandlerProfile) -> None:
        if not 0x20 <= vector <= 0xFF:
            raise ConfigurationError(f"vector {vector:#x} out of range")
        self._handlers[vector] = handler

    def deliver(self, vector: int) -> int:
        """Deliver one interrupt; returns cycles (entry + handler + exit)."""
        handler = self._handlers.get(vector)
        if handler is None:
            raise ConfigurationError(f"no handler for vector {vector:#x}")
        self.delivered[vector] = self.delivered.get(vector, 0) + 1
        return self.kernel.page_fault(handler)  # the exception-path crossing


@dataclass
class TaskState:
    """Bookkeeping for one task under the timeslice scheduler."""

    process: Process
    work_remaining: int  # user cycles still to run
    work_done: int = 0


class TimesliceScheduler:
    """Round-robin preemptive scheduling with a periodic timer tick."""

    def __init__(self, kernel: Kernel, timeslice_cycles: int = 20_000) -> None:
        if timeslice_cycles <= 0:
            raise ConfigurationError("timeslice must be positive")
        self.kernel = kernel
        self.controller = InterruptController(kernel)
        self.timeslice_cycles = timeslice_cycles
        self.total_cycles = 0
        self.ticks = 0

    def run(self, tasks: Sequence[TaskState]) -> int:
        """Run all tasks to completion; returns total cycles.

        Each slice: switch to the task, run up to a timeslice of its user
        work, take the timer interrupt, move on.  All mitigation work
        (switch-path IBPB/RSB/FPU, interrupt-path entry/exit) accrues
        naturally through the kernel.
        """
        machine = self.kernel.machine
        pending = [t for t in tasks if t.work_remaining > 0]
        total = 0
        while pending:
            for task in list(pending):
                total += self.kernel.context_switch(task.process)
                slice_work = min(self.timeslice_cycles, task.work_remaining)
                total += machine.execute(isa.work(slice_work))
                task.work_remaining -= slice_work
                task.work_done += slice_work
                if task.work_remaining <= 0:
                    pending.remove(task)
                if pending:  # no tick needed after the last task retires
                    total += self.controller.deliver(TIMER_VECTOR)
                    self.ticks += 1
        self.total_cycles += total
        return total


def interrupted_retpoline_is_safe(machine: Machine,
                                  rsb_stuffing: bool) -> bool:
    """The section 5.3 scenario: a user-space generic retpoline is
    interrupted mid-sequence (its call already pushed, its ret not yet
    executed); the kernel runs someone else, and eventually the original
    thread's ``ret`` executes against whatever the RSB now holds.

    With RSB stuffing on the switch path, the stale state was replaced by
    benign entries — the ret mispredicts harmlessly.  Without it, an
    attacker-influenced entry left by the intervening work can steer the
    ret's transient execution.  Returns True when no gadget ran.
    """
    from repro.cpu import counters as ctr

    gadget = 0x48_2000
    machine.register_code(gadget, [isa.div()])

    # The interrupted retpoline's call has pushed its return address...
    machine.execute(isa.call(pc=0x48_1000))
    # ...then the interrupt + other work pollutes the RSB.
    machine.rsb.clear()
    machine.rsb.push(gadget)  # attacker-influenced residue
    if rsb_stuffing:
        machine.execute(isa.rsb_fill())
    # Back in the victim: the retpoline's ret finally executes.
    before = machine.counters.read(ctr.TRANSIENT_INSTRUCTIONS)
    machine.execute(isa.ret(pc=0x48_1008, target=0x48_1000))
    return machine.counters.read(ctr.TRANSIENT_INSTRUCTIONS) == before

"""Context switching and the mitigations that ride on it.

Switching between tasks is where the per-*process* (rather than
per-boundary-crossing) mitigations land:

* **IBPB** when the new task belongs to a different mm — protects user
  processes from each other's BTB poisoning (paper 5.3, Table 6);
* **RSB stuffing** so an interrupted user retpoline can't consume a stale
  return prediction, which also blocks SpectreRSB (paper 5.3, Table 7);
* **FPU save/restore**, eager (the LazyFP mitigation) or lazy (trap on
  first use — usually slower, paper 3.1);
* **SSBD MSR toggling** when the outgoing and incoming tasks differ in
  SSBD policy (prctl/seccomp opt-in, paper 3.2).
"""

from __future__ import annotations

from typing import Optional

from ..cpu import isa
from ..cpu.machine import Machine
from ..cpu.modes import Mode
from ..cpu import counters as ctr
from ..mitigations import lazyfp
from ..mitigations.base import MitigationConfig
from ..mitigations.spectre_v2 import ibpb_sequence, rsb_stuffing_sequence
from ..mitigations.ssb import process_wants_ssbd
from ..obs.ledger import ledger_scope
from .process import Process

#: Baseline scheduler work per switch: runqueue manipulation, task state,
#: stack switch.  The paper notes a process switch "takes at least several
#: thousand cycles" before any mitigation work (section 5.3).
SCHEDULER_WORK_CYCLES = 1400


class Scheduler:
    """Applies the context switch sequence on a machine."""

    def __init__(self, machine: Machine, config: MitigationConfig) -> None:
        self.machine = machine
        self.config = config
        self.current: Optional[Process] = None
        self.fpu = lazyfp.FPUState()
        self._ssbd_active = False

    def switch_to(self, new: Process) -> int:
        """Switch from the current task to ``new``; returns cycles."""
        machine = self.machine
        old = self.current
        saved_mode = machine.mode
        machine.mode = Mode.KERNEL
        with ledger_scope(machine.ledger, "kernel.sched"):
            cycles = machine.execute(isa.work(SCHEDULER_WORK_CYCLES))
            machine.counters.bump(ctr.CONTEXT_SWITCHES)

            same_mm = old is not None and old.mm is new.mm
            if not same_mm:
                # Address space switch: one cr3 write regardless of mitigations.
                cycles += machine.execute(isa.mov_cr3(pcid=new.mm.kernel_pcid))
                if self._ibpb_needed(old, new):
                    cycles += machine.run(ibpb_sequence())
            if self.config.v2_rsb_stuffing:
                cycles += machine.run(rsb_stuffing_sequence())

            cycles += self._switch_fpu(old, new)
            cycles += self._switch_ssbd(new)

        self.current = new
        machine.mode = saved_mode
        return cycles

    # ------------------------------------------------------------------ #

    def _ibpb_needed(self, old: Optional[Process], new: Process) -> bool:
        """Linux's conditional-IBPB policy (``spectre_v2_user=prctl,seccomp``).

        The barrier protects processes from each other's BTB poisoning but
        costs thousands of cycles (Table 6), so by default it is issued
        only when one of the tasks requested protection; ``v2_ibpb_always``
        models the ``spectre_v2_user=on`` boot option.
        """
        if not self.config.v2_ibpb or old is None:
            return False
        if self.config.v2_ibpb_always:
            return True
        return old.ibpb_protect or new.ibpb_protect or new.uses_seccomp

    def _switch_fpu(self, old: Optional[Process], new: Process) -> int:
        machine = self.machine
        if self.config.eager_fpu:
            lazyfp.eager_switch(self.fpu, new.pid, new.fpu_secret)
            return machine.run(lazyfp.eager_switch_sequence())
        # Lazy strategy: free now; the incoming task pays a #NM trap plus
        # the deferred save/restore the first time it touches the FPU.
        lazyfp.lazy_switch(self.fpu, new.pid)
        if new.uses_fpu:
            cost = lazyfp.lazy_switch_cost(machine, True)
            machine.charge(cost, primitive="fpu_lazy_restore")
            lazyfp.eager_switch(self.fpu, new.pid, new.fpu_secret)
            return cost
        return 0

    def _switch_ssbd(self, new: Process) -> int:
        want = process_wants_ssbd(
            self.config.ssbd_mode,
            opted_in_prctl=new.ssbd_prctl,
            uses_seccomp=new.uses_seccomp,
        )
        if want == self._ssbd_active:
            return 0
        self.machine.msr.set_ssbd(want)
        self._ssbd_active = want
        cost = self.machine.costs.wrmsr
        self.machine.charge(cost, mitigation="ssbd", primitive="wrmsr_ssbd")
        return cost

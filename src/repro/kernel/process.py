"""Processes and address spaces, as the scheduler and mitigations see them.

Only the attributes that drive mitigation decisions are modelled: which
``mm`` (address space) a task belongs to (IBPB fires when it changes),
whether it uses the FPU (lazy-vs-eager switching), and its SSBD opt-in
state (``prctl``/``seccomp``, paper sections 3.2 and 4.3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

_pid_counter = itertools.count(1)
_mm_counter = itertools.count(1)


@dataclass
class AddressSpace:
    """One ``mm``: a set of page tables identified by a PCID pair.

    Under KPTI each mm has two roots (kernel view and stripped user view);
    the PCID values distinguish them in the TLB.
    """

    mm_id: int = field(default_factory=lambda: next(_mm_counter))

    @property
    def kernel_pcid(self) -> int:
        return self.mm_id & 0x7FF

    @property
    def user_pcid(self) -> int:
        # Linux sets the high PCID bit for the user half of a KPTI pair.
        return (self.mm_id & 0x7FF) | 0x800


@dataclass
class Process:
    """One schedulable task."""

    name: str = "task"
    pid: int = field(default_factory=lambda: next(_pid_counter))
    mm: AddressSpace = field(default_factory=AddressSpace)
    uses_fpu: bool = False
    uses_seccomp: bool = False
    ssbd_prctl: bool = False  # explicitly requested SSBD via prctl
    #: Requested IBPB protection (prctl/seccomp).  Linux's default
    #: ``spectre_v2_user=prctl,seccomp`` policy only issues the barrier for
    #: tasks that asked — which is why LEBench's plain processes don't pay
    #: the Table 6 cost on every switch.
    ibpb_protect: bool = False
    #: Model payload: a value "in" this process's FPU registers, used by
    #: the LazyFP demonstration.
    fpu_secret: int = 0

    # -- the Linux opt-in interfaces (paper 3.2: prctl / seccomp) -------- #

    def prctl_set_ssbd(self) -> None:
        """``prctl(PR_SET_SPECULATION_CTRL, PR_SPEC_STORE_BYPASS, ...)``:
        explicitly request SSBD for this task."""
        self.ssbd_prctl = True

    def prctl_set_ibpb(self) -> None:
        """``prctl(..., PR_SPEC_INDIRECT_BRANCH, ...)``: request the
        IBPB/STIBP protections on switches involving this task."""
        self.ibpb_protect = True

    def enable_seccomp(self) -> None:
        """Install a seccomp filter.  Under pre-5.16 policy this implies
        SSBD and IBPB protection — the Firefox situation in the paper."""
        self.uses_seccomp = True

    def thread(self, name: Optional[str] = None) -> "Process":
        """Create a thread: a new task sharing this process's mm.

        Context switches between threads of one mm skip the IBPB (Linux
        only issues the barrier when switching between different mms).
        """
        return Process(
            name=name or f"{self.name}-thread",
            mm=self.mm,
            uses_fpu=self.uses_fpu,
            uses_seccomp=self.uses_seccomp,
            ssbd_prctl=self.ssbd_prctl,
        )

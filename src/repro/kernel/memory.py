"""Virtual memory: page tables, demand paging, and KPTI's dual views.

This module upgrades KPTI from a boolean into mechanism:

* each :class:`MemoryManager` owns per-process page tables built from
  :class:`~repro.mitigations.l1tf.PageTableEntry` records, plus the
  kernel's own mappings;
* under KPTI every mm has **two views**: the kernel view (everything
  mapped) and the user view, which carries only the entry trampoline —
  the machine's ``kernel_mapped_in_user`` predicate (what Meltdown needs)
  is *derived* from which view the user half actually contains;
* ``mmap``/``munmap``/demand paging drive the page-fault path the
  LEBench cases exercise, and ``munmap`` performs the TLB invalidation
  that PCIDs make cheap (section 5.1);
* not-present PTEs are created through the L1TF-aware helper, so the
  PTE-inversion mitigation is applied (or not) exactly where Linux
  applies it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cpu import isa
from ..cpu.machine import Machine
from ..errors import SegmentationFault, WorkloadError
from ..mitigations.base import MitigationConfig
from ..mitigations.l1tf import PageTableEntry, invert_pte
from .process import Process
from .syscalls import HandlerProfile

PAGE = 4096

#: User address space: mmap region grows up from here.
MMAP_BASE = 0x7000_0000_0000

#: Kernel direct map (what Meltdown reads when it's reachable).
KERNEL_DIRECT_MAP = 0xFFFF_8880_0000_0000

#: Handler profiles for the paging paths.
MINOR_FAULT_PROFILE = HandlerProfile("minor_fault", work_cycles=1800,
                                     loads=8, stores=6, indirect_branches=3)
MMAP_PROFILE = HandlerProfile("mmap_setup", work_cycles=2600, loads=8,
                              stores=12, indirect_branches=4)
MUNMAP_PROFILE = HandlerProfile("munmap_teardown", work_cycles=2200,
                                loads=8, stores=8, indirect_branches=4)


@dataclass
class VMA:
    """One virtual memory area (an mmap'ed range)."""

    start: int
    pages: int

    @property
    def end(self) -> int:
        return self.start + self.pages * PAGE

    def contains(self, address: int) -> bool:
        return self.start <= address < self.end


@dataclass
class PageTableView:
    """One root's worth of translations: page -> PTE."""

    entries: Dict[int, PageTableEntry] = field(default_factory=dict)

    def map_page(self, page: int, frame: int) -> None:
        self.entries[page] = PageTableEntry(present=True, frame=frame)

    def unmap_page(self, page: int, pte_inversion: bool) -> None:
        """Linux never leaves a naked not-present PTE with a stale frame:
        with the L1TF mitigation on, the frame is inverted out of reach."""
        old = self.entries.get(page)
        frame = old.frame if old else 0
        pte = PageTableEntry(present=False, frame=frame)
        self.entries[page] = invert_pte(pte) if pte_inversion else pte

    def translation(self, address: int) -> Optional[PageTableEntry]:
        return self.entries.get(address // PAGE)

    def maps(self, address: int) -> bool:
        pte = self.translation(address)
        return pte is not None and pte.present


class MemoryManager:
    """Per-process address space management on one kernel's machine."""

    def __init__(self, machine: Machine, config: MitigationConfig) -> None:
        self.machine = machine
        self.config = config
        self._frames = 0x10_0000  # next free physical frame (bump)
        # Per-mm state.
        self._vmas: Dict[int, List[VMA]] = {}
        self._user_views: Dict[int, PageTableView] = {}
        self._kernel_view = PageTableView()
        # The kernel's own mappings (direct map sample).
        for i in range(16):
            self._kernel_view.map_page(KERNEL_DIRECT_MAP // PAGE + i,
                                       self._alloc_frame())
        self._next_mmap: Dict[int, int] = {}
        self.minor_faults = 0
        self._sync_machine_predicate()

    # -- helpers ---------------------------------------------------------- #

    def _alloc_frame(self) -> int:
        frame = self._frames
        self._frames += 1
        return frame

    def _run_kernel(self, block) -> int:
        """Execute a kernel handler block in kernel mode."""
        from ..cpu.modes import Mode
        saved = self.machine.mode
        self.machine.mode = Mode.KERNEL
        cycles = self.machine.run(block)
        self.machine.mode = saved
        return cycles

    def _user_view(self, process: Process) -> PageTableView:
        view = self._user_views.get(process.mm.mm_id)
        if view is None:
            view = PageTableView()
            if not self.config.pti:
                # Without KPTI the kernel rides along in every user view.
                view.entries.update(self._kernel_view.entries)
            self._user_views[process.mm.mm_id] = view
        return view

    def _sync_machine_predicate(self) -> None:
        """Derive the machine's Meltdown predicate from the actual views:
        the kernel is 'mapped in user' iff user views contain kernel
        translations."""
        self.machine.kernel_mapped_in_user = not self.config.pti

    def kernel_reachable_from_user(self, process: Process) -> bool:
        """Does this process's user view translate kernel addresses?"""
        return self._user_view(process).maps(KERNEL_DIRECT_MAP)

    # -- the syscall surface ------------------------------------------------ #

    def mmap(self, process: Process, pages: int) -> Tuple[int, List]:
        """Reserve a VMA (demand paged: no frames yet).

        Returns (start address, setup instruction block) — the caller
        (usually a syscall handler) executes the block.
        """
        if pages <= 0:
            raise WorkloadError("mmap needs at least one page")
        start = self._next_mmap.get(process.mm.mm_id, MMAP_BASE)
        self._next_mmap[process.mm.mm_id] = start + pages * PAGE
        self._vmas.setdefault(process.mm.mm_id, []).append(
            VMA(start=start, pages=pages))
        return start, MMAP_PROFILE.compile(self.config, region_index=90)

    def touch(self, process: Process, address: int) -> int:
        """Access one user address, demand-paging on first touch.

        Returns cycles (the fault path on a minor fault, just the access
        otherwise).  Raises :class:`SegmentationFault` outside any VMA.
        """
        vmas = self._vmas.get(process.mm.mm_id, [])
        if not any(vma.contains(address) for vma in vmas):
            raise SegmentationFault(address, "user")
        view = self._user_view(process)
        cycles = 0
        if not view.maps(address):
            # Minor fault: allocate a frame, map it, run the fault path.
            view.map_page(address // PAGE, self._alloc_frame())
            self._kernel_view.map_page(address // PAGE + (1 << 36),
                                       self._alloc_frame())
            self.minor_faults += 1
            cycles += self._run_kernel(
                MINOR_FAULT_PROFILE.compile(self.config, region_index=91))
        cycles += self.machine.execute(isa.load(address))
        return cycles

    def munmap(self, process: Process, start: int) -> int:
        """Tear down the VMA at ``start``: unmap PTEs (L1TF-safely) and
        invalidate the TLB range.  Returns cycles."""
        vmas = self._vmas.get(process.mm.mm_id, [])
        match = next((vma for vma in vmas if vma.start == start), None)
        if match is None:
            raise WorkloadError(f"no VMA at {start:#x}")
        vmas.remove(match)
        view = self._user_view(process)
        for i in range(match.pages):
            page = (match.start // PAGE) + i
            if page in view.entries:
                view.unmap_page(page, pte_inversion=self.config.pte_inversion)
        cycles = self._run_kernel(
            MUNMAP_PROFILE.compile(self.config, region_index=92))
        # Range invalidation: one shootdown regardless of PCIDs (this mm's
        # translations must go everywhere).
        invalidated = self.machine.tlb.flush_all()
        self.machine.charge(invalidated // 4, primitive="tlb_shootdown")
        cycles += invalidated // 4
        return cycles

    # -- the L1TF linkage ------------------------------------------------------ #

    def not_present_ptes(self, process: Process) -> List[PageTableEntry]:
        """All not-present PTEs in the process's view — the ones an L1TF
        attacker would aim through."""
        return [pte for pte in self._user_view(process).entries.values()
                if not pte.present]

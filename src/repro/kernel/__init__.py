"""Model OS kernel: processes, scheduler, entry/exit paths, syscalls.

The kernel is the substrate for every OS-boundary experiment in the paper
(LEBench, the VM workloads' host side, and the always-on mitigations the
PARSEC experiment isolates).
"""

from .ebpf import (
    BPFJit,
    BPFMap,
    BPFProgram,
    Verifier,
    VerifierPolicy,
)
from .entry import build_entry_sequence, build_exit_sequence
from .interrupts import (
    DEVICE_VECTOR,
    InterruptController,
    TIMER_VECTOR,
    TaskState,
    TimesliceScheduler,
)
from .kernel import EXCEPTION_EXTRA_CYCLES, Kernel
from .memory import MemoryManager, PageTableView, VMA
from .process import AddressSpace, Process
from .scheduler import SCHEDULER_WORK_CYCLES, Scheduler
from .syscalls import GETPID, HandlerProfile

__all__ = [
    "AddressSpace",
    "BPFJit",
    "BPFMap",
    "BPFProgram",
    "DEVICE_VECTOR",
    "EXCEPTION_EXTRA_CYCLES",
    "GETPID",
    "HandlerProfile",
    "InterruptController",
    "Kernel",
    "MemoryManager",
    "PageTableView",
    "Process",
    "SCHEDULER_WORK_CYCLES",
    "Scheduler",
    "TIMER_VECTOR",
    "TaskState",
    "TimesliceScheduler",
    "VMA",
    "Verifier",
    "VerifierPolicy",
    "build_entry_sequence",
    "build_exit_sequence",
]

"""The eBPF/kernel boundary: the one the paper names but doesn't study.

Section 1's limitations: "We consider several security boundaries but not
all (e.g., we don't study the eBPF/kernel boundary)."  This module builds
that boundary so the study can be extended to it:

* a :class:`BPFProgram` is untrusted code admitted *into* the kernel —
  the inverse of every other boundary here, which is why its mitigations
  are compile-time;
* the :class:`Verifier` models the two relevant Linux defences: rejecting
  unverifiable programs (size/loop limits) and **Spectre sanitation** —
  the verifier's ``array_index_nospec``-style masking of every map access
  (on by default for unprivileged programs, the direct analogue of the
  JIT's index masking);
* the :class:`BPFJit` lowers a program to an instruction stream; tail
  calls become indirect branches, so they are retpolined under the same
  kernel V2 strategy as the rest of kernel text;
* :func:`attempt_bpf_v1` demonstrates the attack the sanitation exists
  for: an attacker-controlled out-of-bounds map index read transiently,
  exfiltrated through the cache.

Costs attach to the kernel events programs hook: a program with hooks on
the syscall path adds its per-invocation cost to every syscall, which is
how this boundary would have shown up in a Figure 2-style study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..cpu import isa
from ..cpu.isa import Instruction
from ..cpu.machine import Machine
from ..errors import ConfigurationError
from ..mitigations.base import MitigationConfig

#: Linux's verifier complexity budget (we model the instruction cap).
MAX_PROGRAM_INSNS = 4096

#: Demonstration layout.
MAP_BASE = 0xFFFF_8881_0000_0000
PROBE_BASE = 0x7600_0000_0000
PROBE_STRIDE = 4096


@dataclass(frozen=True)
class BPFMap:
    """An array map: the bounds the verifier reasons about."""

    name: str
    entries: int
    value_size: int = 8

    def address_of(self, index: int) -> int:
        return MAP_BASE + 8 * index  # model layout: dense 8-byte slots


@dataclass(frozen=True)
class BPFProgram:
    """One program's per-invocation behaviour."""

    name: str
    insns: int                      # verifier-visible instruction count
    map_accesses: int = 4           # bounds-checked map reads
    helper_calls: int = 2           # direct calls into kernel helpers
    tail_calls: int = 0             # indirect: the retpoline surface
    has_unbounded_loop: bool = False
    map: BPFMap = field(default_factory=lambda: BPFMap("values", 64))


@dataclass(frozen=True)
class VerifierPolicy:
    """The kernel's admission policy for this program's loader."""

    unprivileged: bool = True
    #: Spectre sanitation: mask map indices.  Linux forces this on for
    #: unprivileged loaders; privileged ones may opt out (bpf_token etc.).
    sanitize_v1: bool = True


class Verifier:
    """Admission control plus Spectre sanitation."""

    def __init__(self, policy: VerifierPolicy) -> None:
        self.policy = policy

    def check(self, program: BPFProgram) -> None:
        """Reject programs Linux's verifier would reject."""
        if program.insns > MAX_PROGRAM_INSNS:
            raise ConfigurationError(
                f"program {program.name!r} exceeds the verifier's "
                f"{MAX_PROGRAM_INSNS}-instruction budget")
        if program.has_unbounded_loop:
            raise ConfigurationError(
                f"program {program.name!r} has an unverifiable loop")

    @property
    def sanitizes(self) -> bool:
        return self.policy.sanitize_v1 or self.policy.unprivileged


#: Per-BPF-instruction interpretation/JIT cost (cycles).
INSN_CYCLES = 1
HELPER_CALL_CYCLES = 30


class BPFJit:
    """Lowers a verified program under the kernel's mitigation config."""

    def __init__(self, machine: Machine, config: MitigationConfig,
                 verifier: Verifier) -> None:
        self.machine = machine
        self.config = config
        self.verifier = verifier

    def compile(self, program: BPFProgram) -> List[Instruction]:
        self.verifier.check(program)
        block: List[Instruction] = [
            isa.work(program.insns * INSN_CYCLES
                     + program.helper_calls * HELPER_CALL_CYCLES)
        ]
        for i in range(program.map_accesses):
            if self.verifier.sanitizes:
                block.append(isa.cmov())  # the index mask
            block.append(isa.load(program.map.address_of(i % program.map.entries),
                                  kernel=True))
        for i in range(program.tail_calls):
            pc = 0x4B_0000 + 16 * i
            target = 0x4B_8000 + 16 * i
            block.append(isa.branch_indirect(
                target, pc=pc, retpoline=self.config.uses_retpolines))
        return block

    def invocation_cost(self, program: BPFProgram, runs: int = 12,
                        warmup: int = 4) -> float:
        """Steady-state cycles per invocation (run in kernel mode)."""
        from ..cpu.modes import Mode
        block = self.compile(program)
        saved = self.machine.mode
        self.machine.mode = Mode.KERNEL
        for _ in range(warmup):
            self.machine.run(block)
        total = sum(self.machine.run(block) for _ in range(runs))
        self.machine.mode = saved
        return total / runs


def attempt_bpf_v1(machine: Machine, verifier: Verifier,
                   secret_byte: int, map_: Optional[BPFMap] = None) -> Optional[int]:
    """Spectre V1 through an eBPF map access.

    The attacker loads a program whose map index it controls; the bounds
    check mispredicts and the out-of-bounds read (into kernel memory
    beyond the map) feeds a second, cache-transmitting access.  Verifier
    sanitation masks the index on the speculative path too, killing it.

    Returns the recovered byte or None.
    """
    map_ = map_ or BPFMap("victim", entries=16)
    oob_index = map_.entries + 512  # reaches past the map into the kernel

    for candidate in range(256):
        machine.caches.flush_line(PROBE_BASE + candidate * PROBE_STRIDE)

    gadget: List[Instruction] = []
    effective = oob_index
    if verifier.sanitizes:
        gadget.append(isa.cmov())
        effective = 0  # masked in-bounds
    gadget.append(isa.load(map_.address_of(effective), kernel=True))
    in_bounds = effective < map_.entries and verifier.sanitizes
    transmitted = 0 if in_bounds else secret_byte
    gadget.append(isa.load(PROBE_BASE + transmitted * PROBE_STRIDE))

    # BPF executes in kernel mode: privileged loads are legal, and the
    # mispredicted bounds check runs the body transiently.
    from ..cpu.modes import Mode
    saved = machine.mode
    machine.mode = Mode.KERNEL
    machine.speculate(gadget)
    machine.mode = saved

    warm = [candidate for candidate in range(1, 256)
            if machine.caches.probe_l1(PROBE_BASE + candidate * PROBE_STRIDE)]
    if len(warm) == 1:
        return warm[0]
    return None

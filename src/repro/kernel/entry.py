"""Kernel entry and exit paths: where boundary-crossing mitigations live.

Almost every mitigation the paper prices executes on these two paths
(section 4: "mitigations ... usually involve doing extra work for each
boundary crossing").  The sequences below splice the configured work into
the architectural entry/exit skeleton:

entry:  ``syscall`` -> ``swapgs`` -> [lfence, V1] -> [cr3 swap, PTI]
        -> [SPEC_CTRL write, legacy IBRS]
exit:   [verw, MDS] -> [SPEC_CTRL write, legacy IBRS] -> [cr3 swap, PTI]
        -> ``swapgs`` -> ``sysret``

The eIBRS bimodal entry cost (section 6.2.2) is charged by the machine
itself inside the ``syscall`` instruction, because it is hardware
behaviour, not kernel code.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..cpu import isa
from ..cpu.isa import Instruction
from ..mitigations.base import MitigationConfig
from ..mitigations.meltdown import kpti_entry_sequence, kpti_exit_sequence
from ..mitigations.spectre_v1 import lfence_after_swapgs_sequence
from ..mitigations.spectre_v2 import ibrs_entry_sequence, ibrs_exit_sequence
from ..mitigations.mds import verw_sequence

#: Span names the kernel attributes boundary-crossing work to (the paper's
#: "extra work for each boundary crossing" shows up under these).
ENTRY_SPAN = "kernel.entry"
EXIT_SPAN = "kernel.exit"

#: Built sequences interned by config: the same immutable tuple comes back
#: for every kernel booted with an equal config, so the block engine keeps
#: its compiled entry/exit blocks warm across kernel instances.
_ENTRY_CACHE: Dict[MitigationConfig, Tuple[Instruction, ...]] = {}
_EXIT_CACHE: Dict[MitigationConfig, Tuple[Instruction, ...]] = {}


def build_entry_sequence(config: MitigationConfig,
                         interrupt: bool = False) -> Tuple[Instruction, ...]:
    """The user->kernel crossing under ``config``.

    ``interrupt`` marks exception/interrupt entries (page faults, timer):
    same mitigation work, but the hardware event costs more than
    ``syscall`` — the extra is charged by the caller.
    """
    cached = _ENTRY_CACHE.get(config)
    if cached is not None:
        return cached
    seq: List[Instruction] = [isa.syscall_instr(), isa.swapgs()]
    if config.v1_lfence_swapgs:
        seq.extend(lfence_after_swapgs_sequence())
    if config.pti:
        seq.extend(kpti_entry_sequence())
    if config.uses_ibrs_entry_write:
        seq.extend(ibrs_entry_sequence())
    result = tuple(seq)
    _ENTRY_CACHE[config] = result
    return result


def build_exit_sequence(config: MitigationConfig) -> Tuple[Instruction, ...]:
    """The kernel->user crossing under ``config``."""
    cached = _EXIT_CACHE.get(config)
    if cached is not None:
        return cached
    seq: List[Instruction] = []
    if config.mds_verw:
        seq.extend(verw_sequence())
    if config.uses_ibrs_entry_write:
        seq.extend(ibrs_exit_sequence())
    if config.pti:
        seq.extend(kpti_exit_sequence())
    seq.append(isa.swapgs())
    seq.append(isa.sysret_instr())
    result = tuple(seq)
    _EXIT_CACHE[config] = result
    return result

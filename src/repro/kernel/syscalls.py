"""Syscall handler profiles and their compilation to instruction streams.

A :class:`HandlerProfile` describes what a kernel code path does in terms
the simulator prices: bulk straight-line work, loads/stores over a working
set, and indirect branches (the things retpolines/IBRS make expensive —
the kernel is full of indirect calls through file_operations and friends).

Compilation happens once per (profile, mitigation config) pair and is
cached by the :class:`~repro.kernel.kernel.Kernel`: the mitigation config
determines whether indirect branch sites become retpolines, exactly like
building a kernel with ``CONFIG_RETPOLINE``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..cpu import isa
from ..cpu.isa import Instruction
from ..mitigations.base import MitigationConfig

#: Kernel virtual address region handler working sets live in.
KERNEL_HEAP_BASE = 0xFFFF_8880_1000_0000

#: Spacing between per-profile working sets (keeps them disjoint).
PROFILE_REGION = 1 << 20

#: Code address region for handler indirect-branch sites.
KERNEL_TEXT_BASE = 0xFFFF_FFFF_8100_0000

#: Compiled blocks interned by (profile, compile-relevant config bits,
#: region).  Handing every caller the *same* tuple object — across Kernel
#: instances and whole benchmark runs — lets the block engine's per-machine
#: cache (keyed by sequence identity) keep its compiled blocks and memos
#: warm instead of starting cold each time a kernel is rebuilt.
_COMPILE_CACHE: Dict[tuple, Tuple[Instruction, ...]] = {}


@dataclass(frozen=True)
class HandlerProfile:
    """Work done by one kernel code path (per invocation).

    ``work_cycles`` is bulk straight-line computation; ``loads``/``stores``
    touch this profile's working set (so they warm up across iterations
    like real kernel data structures); ``indirect_branches`` are indirect
    call sites (priced per the V2 strategy); ``copy_bytes`` models a
    user/kernel copy at one load+store per 64-byte line.
    """

    name: str
    work_cycles: int = 100
    loads: int = 4
    stores: int = 2
    indirect_branches: int = 2
    copy_bytes: int = 0

    @property
    def span_name(self) -> str:
        """Span this handler's cycles are attributed to when tracing."""
        return f"kernel.handler.{self.name}"

    def compile(self, config: MitigationConfig,
                region_index: int) -> Tuple[Instruction, ...]:
        """Lower this profile to an instruction stream under ``config``.

        The user-copy path gets one ``array_index_nospec``-style masking
        cmov per transfer when the V1 usercopy hardening is on — the
        kernel-side analogue of the JIT's index masking.  Its cost is a
        single dependent op per copy, which is why the paper found kernel
        V1 mitigations had "no measurable impact on LEBench" (4.6).

        The result is an interned immutable tuple: identical inputs return
        the identical object so block-engine state survives kernel churn.
        """
        key = (self, config.uses_retpolines,
               bool(self.copy_bytes) and config.v1_usercopy_masking,
               region_index)
        cached = _COMPILE_CACHE.get(key)
        if cached is not None:
            return cached
        base = KERNEL_HEAP_BASE + region_index * PROFILE_REGION
        text = KERNEL_TEXT_BASE + region_index * PROFILE_REGION
        retpoline = config.uses_retpolines
        block: List[Instruction] = []
        if self.work_cycles:
            block.append(isa.work(self.work_cycles))
        for i in range(self.loads):
            block.append(isa.load(base + 64 * i, kernel=True))
        for i in range(self.stores):
            block.append(isa.store(base + 32768 + 64 * i, kernel=True))
        for i in range(self.indirect_branches):
            pc = text + 16 * i
            target = text + 0x8000 + 16 * i
            block.append(isa.branch_indirect(target, pc=pc, retpoline=retpoline))
        lines, remainder = divmod(self.copy_bytes, 64)
        lines += 1 if remainder else 0
        if lines and config.v1_usercopy_masking:
            # mask the user-supplied bound once
            block.append(isa.cmov(mitigation="spectre_v1",
                                  primitive="usercopy_mask"))
        for i in range(lines):
            block.append(isa.load(base + 65536 + 64 * i, kernel=True))
            block.append(isa.store(base + 131072 + 64 * i, kernel=True))
        result = tuple(block)
        _COMPILE_CACHE[key] = result
        return result


#: A tiny reference handler (getpid-style) used in tests and examples.
GETPID = HandlerProfile("getpid", work_cycles=30, loads=2, stores=0,
                        indirect_branches=1)

"""The model operating system kernel.

:class:`Kernel` ties a :class:`~repro.cpu.machine.Machine` to a
:class:`~repro.mitigations.base.MitigationConfig` and provides the three
services every workload is built from:

* :meth:`syscall` — a full user->kernel->user round trip running a
  :class:`~repro.kernel.syscalls.HandlerProfile`;
* :meth:`page_fault` — the same crossing via the exception path;
* :meth:`context_switch` — delegate to the :class:`Scheduler`.

"Booting" the kernel applies the one-time mitigation decisions: compiling
indirect branches as retpolines, unmapping the kernel from user page
tables (PTI), and setting eIBRS once (versus legacy IBRS's per-entry MSR
writes).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..cpu import isa
from ..cpu.isa import Instruction
from ..cpu.machine import AMD_RETPOLINE, GENERIC_RETPOLINE, Machine
from ..cpu.modes import Mode
from ..mitigations.base import MitigationConfig, V2Strategy
from ..obs.ledger import ledger_scope
from .entry import ENTRY_SPAN, EXIT_SPAN, build_entry_sequence, build_exit_sequence
from .process import Process
from .scheduler import Scheduler
from .syscalls import HandlerProfile

#: Exception entries (page faults, interrupts) cost more than ``syscall``
#: before any handler work: IDT vectoring, error code push, IRET return.
EXCEPTION_EXTRA_CYCLES = 350


class Kernel:
    """One booted kernel instance on one machine."""

    def __init__(self, machine: Machine, config: MitigationConfig) -> None:
        config.validate_for(machine.cpu)
        self.machine = machine
        self.config = config
        self.scheduler = Scheduler(machine, config)
        # Tuples, not lists: immutable sequences let the block engine skip
        # the per-run in-place-mutation check on its hottest blocks.
        self._entry = tuple(build_entry_sequence(config))
        self._exit = tuple(build_exit_sequence(config))
        self._handler_cache: Dict[str, Tuple[Instruction, ...]] = {}
        self._region_counter = 0
        self._boot()
        # The entry/exit streams run on every crossing for this kernel's
        # lifetime: hand them to the block engine up front so even the
        # first syscall takes the compiled fast path.
        machine.prime_block(self._entry)
        machine.prime_block(self._exit)

    def _boot(self) -> None:
        machine = self.machine
        # PTI decides whether user page tables can see the kernel at all —
        # the predicate Meltdown needs (section 3.1).
        machine.kernel_mapped_in_user = not self.config.pti
        # Pick the retpoline flavor compiled into kernel text.
        if self.config.v2_strategy is V2Strategy.RETPOLINE_AMD:
            machine.retpoline_variant = AMD_RETPOLINE
        else:
            machine.retpoline_variant = GENERIC_RETPOLINE
        # Enhanced IBRS: set SPEC_CTRL.IBRS once at boot and leave it
        # (section 6.2.2); legacy IBRS instead writes it on every entry.
        if self.config.v2_strategy is V2Strategy.EIBRS:
            machine.msr.set_ibrs(True)
        else:
            machine.msr.set_ibrs(False)

    # ------------------------------------------------------------------ #

    def _compiled(self, profile: HandlerProfile) -> Tuple[Instruction, ...]:
        block = self._handler_cache.get(profile.name)
        if block is None:
            block = tuple(profile.compile(self.config, self._region_counter))
            self._region_counter += 1
            self._handler_cache[profile.name] = block
            self.machine.prime_block(block)
        return block

    def syscall(self, profile: HandlerProfile,
                process: Optional[Process] = None) -> int:
        """One complete syscall round trip; returns cycles.

        The machine must be in user mode (the normal state between calls);
        it is returned to user mode by the exit path.

        When a span tracer is installed the crossing decomposes into
        ``kernel.syscall`` > ``kernel.entry`` / ``kernel.handler.<name>`` /
        ``kernel.exit``; untraced runs take the bare path below (one
        attribute check of overhead).
        """
        machine = self.machine
        obs = machine.obs
        ledger = machine.ledger
        if not obs.enabled and ledger is None:
            cycles = machine.run(self._entry)
            cycles += machine.run(self._compiled(profile))
            cycles += machine.run(self._exit)
            return cycles
        with obs.span("kernel.syscall", handler=profile.name):
            with obs.span(ENTRY_SPAN), ledger_scope(ledger, ENTRY_SPAN):
                cycles = machine.run(self._entry)
            with obs.span(profile.span_name), \
                    ledger_scope(ledger, "kernel.handler"):
                cycles += machine.run(self._compiled(profile))
            with obs.span(EXIT_SPAN), ledger_scope(ledger, EXIT_SPAN):
                cycles += machine.run(self._exit)
        return cycles

    def page_fault(self, profile: HandlerProfile) -> int:
        """A fault-driven crossing: same mitigation work, pricier entry."""
        machine = self.machine
        obs = machine.obs
        ledger = machine.ledger
        if not obs.enabled and ledger is None:
            machine.counters.add_cycles(EXCEPTION_EXTRA_CYCLES)
            cycles = EXCEPTION_EXTRA_CYCLES
            cycles += machine.run(self._entry)
            cycles += machine.run(self._compiled(profile))
            cycles += machine.run(self._exit)
            return cycles
        with obs.span("kernel.page_fault", handler=profile.name):
            with ledger_scope(ledger, ENTRY_SPAN):
                machine.charge(EXCEPTION_EXTRA_CYCLES,
                               primitive="exception_vector")
            cycles = EXCEPTION_EXTRA_CYCLES
            with obs.span(ENTRY_SPAN), ledger_scope(ledger, ENTRY_SPAN):
                cycles += machine.run(self._entry)
            with obs.span(profile.span_name), \
                    ledger_scope(ledger, "kernel.handler"):
                cycles += machine.run(self._compiled(profile))
            with obs.span(EXIT_SPAN), ledger_scope(ledger, EXIT_SPAN):
                cycles += machine.run(self._exit)
        return cycles

    def context_switch(self, new: Process) -> int:
        """Switch the CPU to ``new``; returns cycles."""
        obs = self.machine.obs
        if not obs.enabled:
            return self.scheduler.switch_to(new)
        with obs.span("kernel.context_switch", to=new.name):
            return self.scheduler.switch_to(new)

    @property
    def current_process(self) -> Optional[Process]:
        return self.scheduler.current

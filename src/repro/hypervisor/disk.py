"""Emulated virtio-style disk behind the hypervisor boundary.

Guest I/O reaches the host device model through queue kicks — this is the
"every access to the emulated disk requires running code within the
hypervisor" workload of paper section 4.4, driven by the LFS benchmarks.

Like real virtio, submissions are *batched*: writes queue in the guest's
ring and a single kick (one VM exit) submits everything pending.  Flushes
(fsync) force a kick and are the heavyweight handler that taints the host
L1 (so the conditional L1TF flush fires there, not on the fast path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .vm import GuestContext

#: Host device-model work (cycles): ring processing, request validation,
#: backing-store copy.  Per-kick base plus per-request increment.
KICK_HANDLER_CYCLES = 6000
PER_REQUEST_CYCLES = 3000
FLUSH_HANDLER_CYCLES = 14000
READ_HANDLER_CYCLES = 9000

BLOCK_SIZE = 4096


@dataclass
class DiskStats:
    reads: int = 0
    writes: int = 0
    flushes: int = 0
    kicks: int = 0

    @property
    def requests(self) -> int:
        return self.reads + self.writes + self.flushes


class EmulatedDisk:
    """A block device with a batched submission ring."""

    def __init__(self, guest: GuestContext, capacity_blocks: int = 1 << 20) -> None:
        self.guest = guest
        self.capacity_blocks = capacity_blocks
        self.stats = DiskStats()
        self._blocks: Dict[int, int] = {}  # block -> write generation
        self._ring: List[int] = []

    def _check(self, block: int) -> None:
        if not 0 <= block < self.capacity_blocks:
            raise ValueError(f"block {block} out of range")

    # -- submission path --------------------------------------------------- #

    def queue_write(self, block: int) -> None:
        """Queue one block write in the ring (no exit yet)."""
        self._check(block)
        self._ring.append(block)

    def kick(self) -> int:
        """Submit everything queued: one VM exit; returns cycles."""
        if not self._ring:
            return 0
        handler = KICK_HANDLER_CYCLES + PER_REQUEST_CYCLES * len(self._ring)
        for block in self._ring:
            self._blocks[block] = self._blocks.get(block, 0) + 1
            self.stats.writes += 1
        self._ring.clear()
        self.stats.kicks += 1
        return self.guest.hypercall(handler)

    def write_block(self, block: int) -> int:
        """Unbatched write: queue + immediate kick (one exit)."""
        self.queue_write(block)
        return self.kick()

    def read_block(self, block: int) -> int:
        """Synchronous read (one exit); returns cycles."""
        self._check(block)
        self.stats.reads += 1
        return self.guest.hypercall(READ_HANDLER_CYCLES)

    def flush(self) -> int:
        """Barrier/fsync: submit pending writes and drain to stable
        storage.  The heavyweight path that taints the host L1."""
        cycles = self.kick()
        self.stats.flushes += 1
        cycles += self.guest.hypercall(FLUSH_HANDLER_CYCLES, taints_l1=True)
        return cycles

    @property
    def pending(self) -> int:
        return len(self._ring)

"""Hypervisor substrate: VM exits, the L1TF flush, and an emulated disk.

Supports the paper's two section-4.4 experiments: LEBench inside a VM
(host mitigations nearly invisible) and LFS against an emulated disk
(tens-of-kHz exit rates keep per-exit mitigation work under 2% end to
end).
"""

from .disk import (
    BLOCK_SIZE,
    DiskStats,
    EmulatedDisk,
    FLUSH_HANDLER_CYCLES,
    KICK_HANDLER_CYCLES,
    PER_REQUEST_CYCLES,
    READ_HANDLER_CYCLES,
)
from .vm import EXIT_DISPATCH_CYCLES, ExitStats, GuestContext, Hypervisor

__all__ = [
    "BLOCK_SIZE",
    "DiskStats",
    "EXIT_DISPATCH_CYCLES",
    "EmulatedDisk",
    "ExitStats",
    "FLUSH_HANDLER_CYCLES",
    "GuestContext",
    "Hypervisor",
    "KICK_HANDLER_CYCLES",
    "PER_REQUEST_CYCLES",
    "READ_HANDLER_CYCLES",
]

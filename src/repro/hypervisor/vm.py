"""Hypervisor and guest VM model (paper section 4.4).

The guest/hypervisor boundary differs from the syscall boundary in *rate*,
not kind: a VM exit costs far more than a syscall, but the paper's VM
workloads only reach tens of thousands of exits per second (vs millions of
syscalls), so host-side mitigation work per exit — the L1TF flush before
re-entry, conditional IBPB — stays invisible end to end.  That rate
argument is what this model reproduces.

The guest runs its own :class:`~repro.kernel.kernel.Kernel` (with its own
mitigation config) in the guest privilege modes; the host applies its
mitigation work around each exit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cpu import isa
from ..cpu.machine import Machine
from ..cpu.modes import Mode
from ..kernel import HandlerProfile, Kernel
from ..mitigations.base import MitigationConfig
from ..mitigations.l1tf import l1d_flush_sequence
from ..mitigations.mds import verw_sequence
from ..mitigations.spectre_v2 import ibpb_sequence
from ..obs.ledger import ledger_scope

#: Host-side work to decode and dispatch one exit (VMCS read, reason
#: decode, KVM handler dispatch) — before any emulation work.
EXIT_DISPATCH_CYCLES = 1200


@dataclass
class ExitStats:
    """Bookkeeping for exit-rate reporting (the crux of section 4.4)."""

    exits: int = 0
    guest_cycles: int = 0
    host_cycles: int = 0


class Hypervisor:
    """A host kernel running one guest."""

    def __init__(
        self,
        machine: Machine,
        host_config: MitigationConfig,
        guest_config: Optional[MitigationConfig] = None,
    ) -> None:
        self.machine = machine
        self.host_config = host_config
        # The host kernel exists for completeness (host syscalls, context
        # switches for the VMM thread); exits use the sequences below.
        self.host_kernel = Kernel(machine, host_config)
        self.stats = ExitStats()
        self._guest_config = guest_config or MitigationConfig.all_off()

    def create_guest(self) -> "GuestContext":
        return GuestContext(self, self._guest_config)

    # -- the exit/entry mitigation paths --------------------------------- #

    def vm_exit(self, handler_cycles: int, taints_l1: bool = False) -> int:
        """One guest->host->guest round trip; returns host-side cycles.

        ``handler_cycles`` is the emulation work (device model, etc.).
        ``taints_l1`` marks handlers that pull sensitive host data into the
        L1: KVM's default L1TF policy is the *conditional* flush
        (``l1tf=flush,cond``), which only flushes before re-entry after
        such handlers — fast-path exits (IRQ injection, ring kicks) skip
        it.  This conditionality is why the paper's VM workloads show no
        measurable L1TF cost (section 5.6).
        """
        machine = self.machine
        obs = machine.obs
        if not obs.enabled:
            return self._vm_exit_body(handler_cycles, taints_l1)
        with obs.span("hv.vm_exit", handler_cycles=handler_cycles,
                      taints_l1=taints_l1):
            return self._vm_exit_body(handler_cycles, taints_l1)

    def _vm_exit_body(self, handler_cycles: int, taints_l1: bool) -> int:
        machine = self.machine
        with ledger_scope(machine.ledger, "hv.exit"):
            cycles = machine.execute(isa.vmexit())
            cycles += machine.execute(isa.work(EXIT_DISPATCH_CYCLES))
            if handler_cycles:
                cycles += machine.execute(isa.work(handler_cycles))
            if self.host_config.mds_verw:
                # MDS: clear buffers before handing the core back to the guest.
                cycles += machine.run(verw_sequence())
            if self.host_config.l1d_flush_on_vmentry and taints_l1:
                cycles += machine.run(l1d_flush_sequence())
            cycles += machine.execute(isa.vmenter())
        self.stats.exits += 1
        self.stats.host_cycles += cycles
        return cycles


class GuestContext:
    """A guest OS instance: its own kernel, running in guest modes."""

    def __init__(self, hypervisor: Hypervisor, guest_config: MitigationConfig) -> None:
        self.hypervisor = hypervisor
        self.machine = hypervisor.machine
        # Build the guest kernel while the machine is in guest-user mode so
        # the guest's syscalls transition within guest modes.
        self._saved_mode = self.machine.mode
        self.machine.mode = Mode.GUEST_USER
        self.kernel = Kernel(self.machine, guest_config)
        self.machine.mode = self._saved_mode

    def syscall(self, profile: HandlerProfile) -> int:
        """A guest-internal syscall: no VM exit involved."""
        machine = self.machine
        saved = machine.mode
        machine.mode = Mode.GUEST_USER
        obs = machine.obs
        if obs.enabled:
            with obs.span("hv.guest.syscall", handler=profile.name):
                cycles = self.kernel.syscall(profile)
        else:
            cycles = self.kernel.syscall(profile)
        self.hypervisor.stats.guest_cycles += cycles
        machine.mode = saved
        return cycles

    def hypercall(self, handler_cycles: int, taints_l1: bool = False) -> int:
        """Guest action requiring host service (I/O, MSR, ...)."""
        return self.hypervisor.vm_exit(handler_cycles, taints_l1=taints_l1)

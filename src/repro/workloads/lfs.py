"""LFS smallfile/largefile benchmarks against the emulated disk.

These are the Rosenblum & Ousterhout LFS microbenchmarks the paper runs
inside a VM (section 4.4): *smallfile* creates, writes and fsyncs many
small files (flush-heavy, the worst case for exit rate); *largefile*
streams a big file sequentially (data dominated, batched submission, few
exits).

The paper's finding — median overhead under 2% because this workload only
reaches tens of thousands of VM exits per second, versus LEBench's
millions of syscalls — emerges from the guest-side filesystem work (page
cache, journal, VFS: the bulk of each operation) amortizing the per-exit
mitigation cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..cpu.machine import Machine
from ..hypervisor import EmulatedDisk, GuestContext, Hypervisor
from ..kernel import HandlerProfile
from ..mitigations.base import MitigationConfig

#: Guest filesystem work per operation (journal, dcache, page cache).
#: Sized so exits land ~100k cycles apart: the "tens of thousands of VM
#: exits per second" regime of section 4.4.
CREATE_PROFILE = HandlerProfile("lfs_create", work_cycles=55000, loads=32,
                                stores=32, indirect_branches=10)
WRITE_PROFILE = HandlerProfile("lfs_write", work_cycles=28000, loads=16,
                               stores=48, indirect_branches=8, copy_bytes=1024)
READ_PROFILE = HandlerProfile("lfs_read", work_cycles=24000, loads=48,
                              stores=8, indirect_branches=8, copy_bytes=1024)


@dataclass(frozen=True)
class LFSWorkload:
    """One LFS benchmark configuration."""

    name: str
    files: int              # files per iteration
    blocks_per_file: int    # data blocks written per file
    fsync_per_file: bool    # smallfile fsyncs each file; largefile doesn't
    submit_batch: int       # ring occupancy before a kick


SMALLFILE = LFSWorkload("smallfile", files=8, blocks_per_file=1,
                        fsync_per_file=True, submit_batch=1)
LARGEFILE = LFSWorkload("largefile", files=1, blocks_per_file=48,
                        fsync_per_file=False, submit_batch=16)

SUITE: Tuple[LFSWorkload, ...] = (SMALLFILE, LARGEFILE)


def get_workload(name: str) -> LFSWorkload:
    for workload in SUITE:
        if workload.name == name:
            return workload
    raise KeyError(f"unknown LFS workload {name!r}")


class LFSRunner:
    """Drives an LFS workload in a guest against the emulated disk."""

    def __init__(self, machine: Machine, host_config: MitigationConfig,
                 guest_config: MitigationConfig) -> None:
        self.hypervisor = Hypervisor(machine, host_config, guest_config)
        self.guest = self.hypervisor.create_guest()
        self.disk = EmulatedDisk(self.guest)
        self._next_block = 0

    def _fresh_block(self) -> int:
        block = self._next_block
        self._next_block = (self._next_block + 1) % self.disk.capacity_blocks
        return block

    def run_iteration(self, workload: LFSWorkload) -> int:
        """One iteration (a batch of file operations); returns cycles."""
        cycles = 0
        for _ in range(workload.files):
            cycles += self.guest.syscall(CREATE_PROFILE)
            for _ in range(workload.blocks_per_file):
                cycles += self.guest.syscall(WRITE_PROFILE)
                self.disk.queue_write(self._fresh_block())
                if self.disk.pending >= workload.submit_batch:
                    cycles += self.disk.kick()
            if workload.fsync_per_file:
                cycles += self.disk.flush()
            # Read-back phase: served from the guest page cache (no exit),
            # like the LFS benchmark's warm read pass.
            cycles += self.guest.syscall(READ_PROFILE)
        cycles += self.disk.kick()  # drain anything still queued
        return cycles

    def measure(self, workload: LFSWorkload, iterations: int = 12,
                warmup: int = 3) -> float:
        for _ in range(warmup):
            self.run_iteration(workload)
        total = 0
        for _ in range(iterations):
            total += self.run_iteration(workload)
        return total / iterations


def run_workload(
    machine: Machine,
    host_config: MitigationConfig,
    workload: LFSWorkload,
    guest_config: MitigationConfig = MitigationConfig.all_off(),
    iterations: int = 12,
    warmup: int = 3,
) -> float:
    """Cycles per iteration of ``workload`` with the given host config."""
    runner = LFSRunner(machine, host_config, guest_config)
    return runner.measure(workload, iterations, warmup)

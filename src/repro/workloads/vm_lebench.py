"""LEBench inside a virtual machine (paper section 4.4, first workload).

"The performance of running LEBench inside of a virtual machine with and
without host mitigations enabled mirrors running a customer application on
a cloud provider.  Execution primarily (but not exclusively) stays within
the VM so we would expect host mitigations to have limited impact."

The guest runs the LEBench suite through its own kernel; the only host
involvement is the periodic timer/external-interrupt exit.  Host
mitigation work therefore lands on a few exits per thousand guest
operations, and the measured overhead stays within the paper's ±3% band.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..cpu.machine import Machine
from ..cpu.modes import Mode
from ..hypervisor import GuestContext, Hypervisor
from ..mitigations.base import MitigationConfig
from .lebench import FAULT, LEBenchCase, SUITE, SYSCALL

#: One timer exit per this many guest operations (models a kHz-scale tick
#: against ~100k guest ops/second, compressed so short measurement runs
#: still see a representative number of exits).
TIMER_EXIT_PERIOD = 50

#: Host-side work for a timer exit: inject the interrupt, update clocks.
TIMER_EXIT_HANDLER_CYCLES = 2000


class GuestLEBenchRunner:
    """Runs LEBench cases in a guest, with periodic host timer exits."""

    def __init__(self, machine: Machine, host_config: MitigationConfig,
                 guest_config: MitigationConfig) -> None:
        self.hypervisor = Hypervisor(machine, host_config, guest_config)
        self.guest = self.hypervisor.create_guest()
        self._op_counter = 0

    def run_op(self, case: LEBenchCase) -> int:
        """One guest-side operation (syscall/fault cases only: the guest
        scheduler behaves identically with or without *host* mitigations,
        so cross-process cases add nothing to this comparison)."""
        machine = self.guest.machine
        saved = machine.mode
        machine.mode = Mode.GUEST_USER
        if case.kind == FAULT:
            cycles = self.guest.kernel.page_fault(case.profile)
        else:
            cycles = self.guest.kernel.syscall(case.profile)
        machine.mode = saved

        self._op_counter += 1
        if self._op_counter % TIMER_EXIT_PERIOD == 0:
            cycles += self.hypervisor.vm_exit(TIMER_EXIT_HANDLER_CYCLES)
        return cycles

    def measure_case(self, case: LEBenchCase, iterations: int = 24,
                     warmup: int = 6) -> float:
        for _ in range(warmup):
            self.run_op(case)
        total = 0
        for _ in range(iterations):
            total += self.run_op(case)
        return total / iterations


def run_suite(
    machine: Machine,
    host_config: MitigationConfig,
    guest_config: Optional[MitigationConfig] = None,
    iterations: int = 24,
    warmup: int = 6,
    cases: Optional[Tuple[LEBenchCase, ...]] = None,
) -> Dict[str, float]:
    """Guest LEBench cycles/op per case under the given *host* config."""
    if guest_config is None:
        guest_config = MitigationConfig.all_off()
    runner = GuestLEBenchRunner(machine, host_config, guest_config)
    selected = cases or tuple(c for c in SUITE if c.kind in (SYSCALL, FAULT))
    return {
        case.name: runner.measure_case(case, iterations, warmup)
        for case in selected
    }

"""PARSEC compute benchmarks: swaptions, facesim, bodytrack (paper 4.5/5.5).

These are single-process, compute-intensive workloads with essentially no
boundary crossings, chosen by the paper to isolate the cost of "always on"
mitigations.  Two paper findings to reproduce:

* with the **default** mitigation set, overhead is in the noise (±0.5%,
  never above 2%) — our model's only boundary crossings are rare timer
  ticks, so this emerges naturally;
* with **SSBD force-enabled**, slowdowns reach ~34% and are *worse on
  newer parts* (Figure 5) — this emerges from each workload's
  store-to-load forwarding density multiplied by the per-CPU SSBD load
  penalty.

The three workloads differ in working set (facesim's misses dilute the
SSBD penalty; swaptions' cache-resident inner loops concentrate it) and in
forwarding density, mirroring their real memory behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..cpu import isa
from ..cpu.machine import Machine
from ..kernel import HandlerProfile, Kernel, Process
from ..mitigations.base import MitigationConfig

#: User-space heap where workload working sets live.
HEAP_BASE = 0x2000_0000

#: Timer tick: one kernel crossing every this many iterations.
TIMER_PERIOD = 100

#: Minimal timer-interrupt handler.
TIMER_PROFILE = HandlerProfile("timer_tick", work_cycles=500, loads=6,
                               stores=2, indirect_branches=2)


@dataclass(frozen=True)
class PARSECWorkload:
    """One PARSEC benchmark's per-iteration behaviour.

    ``store_load_pairs`` is the number of store-then-dependent-load events
    per iteration — the store-to-load forwarding traffic SSBD penalizes.
    ``working_set_kb`` controls how much of the load stream misses cache.
    """

    name: str
    work_cycles: int
    store_load_pairs: int
    plain_loads: int
    working_set_kb: int
    uses_fpu: bool = True

    def stride_count(self) -> int:
        return max(1, (self.working_set_kb * 1024) // 64)


#: The paper's three benchmarks.  Densities/working sets are chosen to
#: reproduce Figure 5's ordering (swaptions > bodytrack > facesim) and
#: magnitude (~10% Broadwell up to ~34% Zen 3 for swaptions).
SWAPTIONS = PARSECWorkload("swaptions", work_cycles=10500,
                           store_load_pairs=110, plain_loads=24,
                           working_set_kb=24)
BODYTRACK = PARSECWorkload("bodytrack", work_cycles=11000,
                           store_load_pairs=80, plain_loads=48,
                           working_set_kb=256)
FACESIM = PARSECWorkload("facesim", work_cycles=9000,
                         store_load_pairs=70, plain_loads=64,
                         working_set_kb=4096)

SUITE: Tuple[PARSECWorkload, ...] = (SWAPTIONS, FACESIM, BODYTRACK)


def get_workload(name: str) -> PARSECWorkload:
    for workload in SUITE:
        if workload.name == name:
            return workload
    raise KeyError(f"unknown PARSEC workload {name!r}")


class PARSECRunner:
    """Executes one PARSEC workload on one booted kernel."""

    def __init__(self, kernel: Kernel, workload: PARSECWorkload,
                 ssbd_process: bool = False) -> None:
        self.kernel = kernel
        self.machine = kernel.machine
        self.workload = workload
        self._iteration = 0
        self._cursor = 0
        process = Process(f"parsec-{workload.name}", uses_fpu=workload.uses_fpu,
                          ssbd_prctl=ssbd_process)
        kernel.context_switch(process)

    def run_iteration(self) -> int:
        """One outer-loop iteration; returns cycles."""
        machine = self.machine
        w = self.workload
        cycles = machine.execute(isa.work(w.work_cycles))
        strides = w.stride_count()
        base = HEAP_BASE
        # Store-to-load forwarding traffic: write a slot, read it right
        # back (accumulator/array-update patterns).
        for i in range(w.store_load_pairs):
            addr = base + 64 * ((self._cursor + i) % strides)
            cycles += machine.execute(isa.store(addr))
            cycles += machine.execute(isa.load(addr))
        # Streaming loads over the working set (misses when it exceeds L2).
        for i in range(w.plain_loads):
            addr = base + (1 << 24) + 64 * ((self._cursor * w.plain_loads + i) % strides)
            cycles += machine.execute(isa.load(addr))
        self._cursor += w.plain_loads
        self._iteration += 1
        if self._iteration % TIMER_PERIOD == 0:
            cycles += self.kernel.page_fault(TIMER_PROFILE)
        return cycles

    def measure(self, iterations: int = 40, warmup: int = 8) -> float:
        """Average cycles per iteration, steady state."""
        for _ in range(warmup):
            self.run_iteration()
        total = 0
        for _ in range(iterations):
            total += self.run_iteration()
        return total / iterations


def run_workload(
    machine: Machine,
    config: MitigationConfig,
    workload: PARSECWorkload,
    force_ssbd: bool = False,
    iterations: int = 40,
    warmup: int = 8,
) -> float:
    """Cycles per iteration of ``workload`` under ``config``.

    ``force_ssbd`` models the paper's section 5.5 experiment: the process
    opts into SSBD via prctl (the policy must allow it, i.e. not OFF).
    """
    kernel = Kernel(machine, config)
    runner = PARSECRunner(kernel, workload, ssbd_process=force_ssbd)
    return runner.measure(iterations, warmup)

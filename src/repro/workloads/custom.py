"""Build-your-own workloads: the user-facing composition API.

The paper's workloads cover four boundary profiles (OS-heavy, JS sandbox,
VM, pure compute).  Downstream users of this library usually want a
fifth: *their* application.  :class:`WorkloadBuilder` lets them compose
one from the same primitives the bundled workloads use — user compute,
syscalls with a chosen kernel-work profile, page faults, context
switches, store->load traffic — and measure it under any mitigation
configuration with one call.

Example::

    profile = (WorkloadBuilder("webserver")
               .user_work(3000)
               .syscall(recv_profile)
               .syscall(send_profile)
               .store_load_pairs(10)
               .context_switch_every(50))
    cycles = profile.measure(get_cpu("zen3"), linux_default(cpu))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..cpu import isa
from ..cpu.machine import Machine
from ..cpu.model import CPUModel
from ..errors import WorkloadError
from ..kernel import HandlerProfile, Kernel, Process
from ..mitigations.base import MitigationConfig

#: Heap region for custom workloads' memory traffic.
CUSTOM_HEAP = 0x5500_0000


@dataclass(frozen=True)
class _Step:
    kind: str            # 'user_work' | 'syscall' | 'fault' | 'stl' | 'loads'
    amount: int = 0
    profile: Optional[HandlerProfile] = None


class WorkloadBuilder:
    """Fluent builder for a custom per-iteration operation sequence."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._steps: List[_Step] = []
        self._ctx_period = 0
        self._process_kwargs = {}

    # -- composition ------------------------------------------------------ #

    def user_work(self, cycles: int) -> "WorkloadBuilder":
        """Straight-line user-mode compute."""
        if cycles < 0:
            raise WorkloadError("user_work cycles must be non-negative")
        self._steps.append(_Step("user_work", cycles))
        return self

    def syscall(self, profile: HandlerProfile) -> "WorkloadBuilder":
        """One kernel round trip running ``profile``."""
        self._steps.append(_Step("syscall", profile=profile))
        return self

    def page_fault(self, profile: HandlerProfile) -> "WorkloadBuilder":
        """One exception-path crossing."""
        self._steps.append(_Step("fault", profile=profile))
        return self

    def store_load_pairs(self, count: int) -> "WorkloadBuilder":
        """Forwarding-sensitive traffic (what SSBD penalizes)."""
        self._steps.append(_Step("stl", count))
        return self

    def streaming_loads(self, count: int) -> "WorkloadBuilder":
        """Plain loads over a rotating working set."""
        self._steps.append(_Step("loads", count))
        return self

    def context_switch_every(self, iterations: int) -> "WorkloadBuilder":
        """Ping-pong with a sibling process every N iterations."""
        if iterations < 1:
            raise WorkloadError("context switch period must be >= 1")
        self._ctx_period = iterations
        return self

    def process(self, **kwargs) -> "WorkloadBuilder":
        """Attributes of the process running the workload (``uses_fpu``,
        ``uses_seccomp``, ``ssbd_prctl`` ...)."""
        self._process_kwargs.update(kwargs)
        return self

    # -- execution ---------------------------------------------------------- #

    def build_runner(self, machine: Machine,
                     config: MitigationConfig) -> "CustomRunner":
        if not self._steps:
            raise WorkloadError(f"workload {self.name!r} has no steps")
        return CustomRunner(self, machine, config)

    def measure(self, cpu: CPUModel, config: MitigationConfig,
                iterations: int = 20, warmup: int = 5,
                seed: int = 1) -> float:
        """Average cycles per iteration on a fresh machine."""
        runner = self.build_runner(Machine(cpu, seed=seed), config)
        return runner.measure(iterations, warmup)

    def overhead_percent(self, cpu: CPUModel, config: MitigationConfig,
                         iterations: int = 20, warmup: int = 5) -> float:
        """Slowdown of ``config`` relative to all-off, in percent."""
        mitigated = self.measure(cpu, config, iterations, warmup)
        baseline = self.measure(cpu, MitigationConfig.all_off(),
                                iterations, warmup)
        return 100.0 * (mitigated / baseline - 1.0)


class CustomRunner:
    """Executes a built workload on one kernel."""

    def __init__(self, builder: WorkloadBuilder, machine: Machine,
                 config: MitigationConfig) -> None:
        self.builder = builder
        self.machine = machine
        self.kernel = Kernel(machine, config)
        self.main_process = Process(builder.name, **builder._process_kwargs)
        self.sibling = Process(f"{builder.name}-peer")
        self.kernel.context_switch(self.main_process)
        self._iteration = 0
        self._cursor = 0

    def run_iteration(self) -> int:
        machine = self.machine
        cycles = 0
        for step in self.builder._steps:
            if step.kind == "user_work":
                cycles += machine.execute(isa.work(step.amount))
            elif step.kind == "syscall":
                cycles += self.kernel.syscall(step.profile)
            elif step.kind == "fault":
                cycles += self.kernel.page_fault(step.profile)
            elif step.kind == "stl":
                for i in range(step.amount):
                    addr = CUSTOM_HEAP + 64 * ((self._cursor + i) % 512)
                    cycles += machine.execute(isa.store(addr))
                    cycles += machine.execute(isa.load(addr))
                self._cursor += step.amount
            elif step.kind == "loads":
                for i in range(step.amount):
                    addr = CUSTOM_HEAP + (1 << 22) + \
                        64 * ((self._cursor + i) % 4096)
                    cycles += machine.execute(isa.load(addr))
                self._cursor += step.amount
        self._iteration += 1
        period = self.builder._ctx_period
        if period and self._iteration % period == 0:
            cycles += self.kernel.context_switch(self.sibling)
            cycles += self.kernel.context_switch(self.main_process)
        return cycles

    def measure(self, iterations: int = 20, warmup: int = 5) -> float:
        for _ in range(warmup):
            self.run_iteration()
        total = 0
        for _ in range(iterations):
            total += self.run_iteration()
        return total / iterations

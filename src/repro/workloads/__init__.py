"""Workload substitutes for the paper's end-to-end benchmarks.

* :mod:`~repro.workloads.lebench` — OS-interface microbenchmarks (4.2)
* :mod:`~repro.workloads.parsec` — compute benchmarks (4.5, 5.5)
* :mod:`~repro.workloads.lfs` — VM disk workloads (4.4)
* :mod:`~repro.workloads.vm_lebench` — LEBench in a guest (4.4)

The Octane suite lives with its engine in :mod:`repro.jsengine.octane`.
"""

from . import consolidation, custom, lebench, lfs, parsec, vm_lebench
from .consolidation import ConsolidationMix
from .custom import WorkloadBuilder

__all__ = ["ConsolidationMix", "WorkloadBuilder", "consolidation", "custom",
           "lebench", "lfs", "parsec", "vm_lebench"]

"""LEBench: microbenchmarks of core OS operations (paper section 4.2).

The paper uses the WARD-distributed variant of LEBench [Ren et al., SOSP
'19] and reports the geometric mean across the suite.  Our substitute
keeps the same structure: one benchmark per core kernel operation, each an
operation loop whose per-op cycle cost we average, with the suite-level
score being the geometric mean of per-benchmark ratios.

Each case is characterized by a :class:`~repro.kernel.syscalls
.HandlerProfile` (how much kernel work the op does) plus a crossing kind:

* ``syscall`` ops enter via the syscall path;
* ``fault`` ops enter via the exception path (page faults);
* ``ctx`` ops are the classic pipe ping-pong: two syscalls plus two
  context switches between different processes, so the per-process
  mitigations (IBPB, RSB stuffing, FPU strategy) are exercised;
* ``spawn`` ops (fork/thread-create) include one switch to the child.

Handler sizes are scaled so that mitigation-free op costs span the same
range as LEBench's real operations (hundreds of cycles for getpid up to
tens of thousands for big fork), which is what makes the suite geomean
land in the paper's observed bands rather than being dominated by any
single tiny syscall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..cpu import isa
from ..cpu.machine import Machine
from ..kernel import HandlerProfile, Kernel, Process
from ..mitigations.base import MitigationConfig

SYSCALL = "syscall"
FAULT = "fault"
CTX = "ctx"
SPAWN = "spawn"


@dataclass(frozen=True)
class LEBenchCase:
    """One LEBench microbenchmark."""

    name: str
    kind: str
    profile: HandlerProfile
    user_work: int = 60  # user-mode cycles per operation (loop body)

    def __post_init__(self) -> None:
        if self.kind not in (SYSCALL, FAULT, CTX, SPAWN):
            raise ValueError(f"unknown LEBench case kind {self.kind!r}")


def _case(name: str, kind: str = SYSCALL, *, work: int, loads: int = 4,
          stores: int = 2, branches: int = 2, copy: int = 0,
          user_work: int = 60) -> LEBenchCase:
    profile = HandlerProfile(
        name=name,
        work_cycles=work,
        loads=loads,
        stores=stores,
        indirect_branches=branches,
        copy_bytes=copy,
    )
    return LEBenchCase(name=name, kind=kind, profile=profile, user_work=user_work)


#: The suite, ordered roughly smallest to largest operation.
SUITE: Tuple[LEBenchCase, ...] = (
    _case("getpid", work=250, loads=6, stores=0, branches=1),
    _case("context_switch", CTX, work=360, loads=6, stores=2, branches=3),
    _case("small_read", work=1100, loads=12, stores=4, branches=4, copy=64),
    _case("big_read", work=5000, loads=32, stores=4, branches=4, copy=512),
    _case("small_write", work=1100, loads=10, stores=6, branches=4, copy=64),
    _case("big_write", work=5000, loads=8, stores=32, branches=4, copy=512),
    _case("mmap", work=4300, loads=8, stores=16, branches=5),
    _case("munmap", work=3300, loads=8, stores=8, branches=5),
    _case("small_page_fault", FAULT, work=2400, loads=8, stores=8, branches=3),
    _case("big_page_fault", FAULT, work=8800, loads=16, stores=32, branches=5),
    _case("fork", SPAWN, work=26000, loads=32, stores=48, branches=10),
    _case("big_fork", SPAWN, work=52000, loads=48, stores=64, branches=12),
    _case("thread_create", SPAWN, work=8500, loads=16, stores=16, branches=8),
    _case("send", work=2300, loads=8, stores=8, branches=8, copy=256),
    _case("recv", work=2300, loads=12, stores=4, branches=8, copy=256),
    _case("select", work=3100, loads=24, stores=4, branches=10),
    _case("poll", work=3100, loads=24, stores=4, branches=10),
    _case("epoll", work=1900, loads=8, stores=4, branches=6),
)

CASE_NAMES: Tuple[str, ...] = tuple(case.name for case in SUITE)


def get_case(name: str) -> LEBenchCase:
    for case in SUITE:
        if case.name == name:
            return case
    raise KeyError(f"unknown LEBench case {name!r}; known: {CASE_NAMES}")


class LEBenchRunner:
    """Executes LEBench cases against one booted kernel."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.machine = kernel.machine
        # The ping-pong pair for context switch benchmarks; distinct mms so
        # the IBPB fires, like the real pipe benchmark's two processes.
        self.proc_a = Process("lebench-a")
        self.proc_b = Process("lebench-b")
        # fork/thread targets
        self.child = Process("lebench-child")
        self.thread = self.proc_a.thread("lebench-thread")
        self.kernel.context_switch(self.proc_a)

    def run_op(self, case: LEBenchCase) -> int:
        """One operation of ``case``; returns cycles."""
        machine = self.machine
        cycles = machine.execute(isa.work(case.user_work))
        if case.kind == SYSCALL:
            cycles += self.kernel.syscall(case.profile)
        elif case.kind == FAULT:
            cycles += self.kernel.page_fault(case.profile)
        elif case.kind == CTX:
            # write -> switch to B -> read -> switch back to A
            cycles += self.kernel.syscall(case.profile)
            cycles += self.kernel.context_switch(self.proc_b)
            cycles += self.kernel.syscall(case.profile)
            cycles += self.kernel.context_switch(self.proc_a)
        elif case.kind == SPAWN:
            cycles += self.kernel.syscall(case.profile)
            target = self.thread if "thread" in case.name else self.child
            cycles += self.kernel.context_switch(target)
            cycles += self.kernel.context_switch(self.proc_a)
        return cycles

    def measure_case(self, case: LEBenchCase, iterations: int = 24,
                     warmup: int = 6) -> float:
        """Average cycles per operation in the steady state."""
        with self.machine.obs.span(f"lebench.case.{case.name}",
                                   kind=case.kind, iterations=iterations,
                                   warmup=warmup):
            for _ in range(warmup):
                self.run_op(case)
            total = 0
            for _ in range(iterations):
                total += self.run_op(case)
        return total / iterations


def run_suite(
    machine: Machine,
    config: MitigationConfig,
    iterations: int = 24,
    warmup: int = 6,
    cases: Optional[Tuple[LEBenchCase, ...]] = None,
) -> Dict[str, float]:
    """Run the (sub)suite under ``config``; returns cycles/op per case."""
    with machine.obs.span("lebench.suite", cpu=machine.cpu.key):
        kernel = Kernel(machine, config)
        runner = LEBenchRunner(kernel)
        results: Dict[str, float] = {}
        for case in cases or SUITE:
            results[case.name] = runner.measure_case(case, iterations, warmup)
    return results

"""Server consolidation: many mixed-trust processes on one core.

The per-process mitigations (conditional IBPB/STIBP, SSBD opt-ins, eager
FPU) only show their real cost when *different kinds* of tasks share a
CPU: a consolidation host interleaves plain batch jobs with sandboxed
(seccomp'd) services, and every switch across that trust boundary pays
the barrier.  The paper's LEBench context-switch cases ping-pong between
two identical processes; this workload generalizes them into the shape a
cloud host actually runs, driven by the preemptive
:class:`~repro.kernel.interrupts.TimesliceScheduler`.

Knobs of interest: the sandboxed fraction (how many switches cross the
trust boundary) and the timeslice (how often switches happen at all).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..cpu.machine import Machine
from ..cpu.model import CPUModel
from ..errors import WorkloadError
from ..kernel import Kernel, Process, TaskState, TimesliceScheduler
from ..mitigations.base import MitigationConfig


@dataclass(frozen=True)
class ConsolidationMix:
    """One host's task population."""

    plain_tasks: int = 4          # batch jobs, no opt-ins
    sandboxed_tasks: int = 4      # seccomp'd services (IBPB/SSBD targets)
    work_per_task: int = 120_000  # user cycles each must complete
    timeslice_cycles: int = 15_000
    fpu_tasks: bool = True        # services use the FPU (eager-FPU surface)

    def __post_init__(self) -> None:
        if self.plain_tasks + self.sandboxed_tasks < 1:
            raise WorkloadError("need at least one task")
        if self.work_per_task <= 0 or self.timeslice_cycles <= 0:
            raise WorkloadError("work and timeslice must be positive")


DEFAULT_MIX = ConsolidationMix()


def build_tasks(mix: ConsolidationMix) -> List[TaskState]:
    tasks: List[TaskState] = []
    for i in range(mix.plain_tasks):
        tasks.append(TaskState(Process(f"batch-{i}"),
                               work_remaining=mix.work_per_task))
    for i in range(mix.sandboxed_tasks):
        tasks.append(TaskState(
            Process(f"service-{i}", uses_seccomp=True,
                    uses_fpu=mix.fpu_tasks),
            work_remaining=mix.work_per_task))
    return tasks


def run_host(
    cpu: CPUModel,
    config: MitigationConfig,
    mix: ConsolidationMix = DEFAULT_MIX,
    seed: int = 1,
) -> Tuple[int, TimesliceScheduler]:
    """Run the whole task population to completion.

    Returns (total cycles, the scheduler — for its tick/IBPB stats).
    """
    kernel = Kernel(Machine(cpu, seed=seed), config)
    scheduler = TimesliceScheduler(kernel,
                                   timeslice_cycles=mix.timeslice_cycles)
    total = scheduler.run(build_tasks(mix))
    return total, scheduler


def consolidation_overhead_percent(
    cpu: CPUModel,
    config: MitigationConfig,
    mix: ConsolidationMix = DEFAULT_MIX,
) -> float:
    """Slowdown of ``config`` vs all-off on this host shape."""
    mitigated, _ = run_host(cpu, config, mix)
    baseline, _ = run_host(cpu, MitigationConfig.all_off(), mix)
    return 100.0 * (mitigated / baseline - 1.0)

#!/usr/bin/env python3
"""Scenario: a cloud operator deciding whether to retire old hardware.

The paper's actionable conclusion: "A simple way to reduce overheads
significantly without compromising security is to replace older CPUs with
newer models."  This example quantifies that advice for an operator
running OS-intensive services (the LEBench profile) on a mixed fleet:

* measure the mitigation tax per generation;
* compute how much of an upgrade's benefit comes from *mitigation relief
  alone* (ignoring the newer part's raw speed);
* check the alternative — turning mitigations off — against the attack
  demos, showing what it actually exposes.

Run:  python examples/cloud_upgrade_study.py
"""

import numpy as np

from repro import Machine, MitigationConfig, Mode, get_cpu, linux_default
from repro.mitigations.meltdown import attempt_meltdown
from repro.mitigations.mds import attempt_mds_sample, kernel_touched_secret
from repro.workloads.lebench import run_suite

FLEET = ("broadwell", "skylake_client", "cascade_lake", "ice_lake_server")


def mitigation_tax(cpu_key: str) -> float:
    """Fraction of OS-intensive throughput lost to default mitigations."""
    cpu = get_cpu(cpu_key)
    off = run_suite(Machine(cpu, seed=1), MitigationConfig.all_off(),
                    iterations=14, warmup=4)
    on = run_suite(Machine(cpu, seed=1), linux_default(cpu),
                   iterations=14, warmup=4)
    geo = float(np.exp(np.mean([np.log(on[n] / off[n]) for n in off])))
    return geo - 1.0


def main() -> None:
    print("Mitigation tax on OS-intensive work (LEBench geomean):\n")
    taxes = {}
    for key in FLEET:
        taxes[key] = mitigation_tax(key)
        cpu = get_cpu(key)
        print(f"  {cpu.microarchitecture:18s} ({cpu.year})  "
              f"{100 * taxes[key]:5.1f}%")

    relief = (1 + taxes["broadwell"]) / (1 + taxes["ice_lake_server"])
    print(f"\nUpgrading Broadwell -> Ice Lake Server recovers "
          f"{100 * (relief - 1):.1f}% throughput from mitigation relief "
          f"alone,\nbefore counting the newer part's raw performance.\n")

    # The tempting alternative: run the old fleet with mitigations=off.
    print("What mitigations=off exposes on the Broadwell fleet:")
    machine = Machine(get_cpu("broadwell"))
    machine.kernel_mapped_in_user = True  # no KPTI
    leaked = attempt_meltdown(machine, secret_byte=0x5C)
    print(f"  Meltdown: arbitrary kernel memory read "
          f"({'leaked ' + hex(leaked) if leaked is not None else 'blocked'})")
    kernel_touched_secret(machine, 0xDB)
    sampled = attempt_mds_sample(machine, Mode.USER)
    print(f"  MDS: kernel buffer residue sampled from user mode "
          f"({sampled if sampled else 'nothing'})")
    print("\nConclusion: the upgrade, not the boot flag.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Scenario: auditing a mitigation configuration against every attack.

Given a CPU and a candidate mitigation set (say, a performance team's
proposal to boot with some knobs off), run the full attack battery and
report exactly which classes of leak the configuration permits.  This is
the mechanistic counterpart of the paper's Table 1: not "what does Linux
enable", but "what does *this* config actually stop on *this* part".

Run:  python examples/security_audit.py [cpu_key]
"""

import sys
from typing import Dict

from repro import Machine, Mode, MitigationConfig, get_cpu, linux_default
from repro.kernel import Kernel
from repro.mitigations import spectre_v2
from repro.mitigations.lazyfp import FPUState, attempt_lazyfp, lazy_switch
from repro.mitigations.meltdown import attempt_meltdown
from repro.mitigations.mds import attempt_mds_sample, kernel_touched_secret, verw_sequence
from repro.mitigations.spectre_v1 import attempt_bounds_bypass
from repro.mitigations.ssb import attempt_store_bypass, process_wants_ssbd


def audit(cpu_key: str, config: MitigationConfig) -> Dict[str, bool]:
    """Return attack name -> leaked? under ``config`` on ``cpu_key``."""
    cpu = get_cpu(cpu_key)
    results: Dict[str, bool] = {}

    # Meltdown: the kernel's KPTI state decides.
    kernel = Kernel(Machine(cpu), config)
    results["meltdown"] = attempt_meltdown(kernel.machine, 0x42) is not None

    # Spectre V1 in the kernel: lfence-after-swapgs hardening.
    machine = Machine(cpu)
    results["spectre_v1"] = attempt_bounds_bypass(
        machine, 0x42, lfence_hardened=config.v1_lfence_swapgs) is not None

    # Spectre V2 user->kernel: retpolines protect the victim branch.
    machine = Machine(cpu)
    results["spectre_v2"] = spectre_v2.attempt_btb_injection(
        machine, Mode.USER, Mode.KERNEL, config=config)

    # Speculative store bypass: the process's SSBD state decides.
    machine = Machine(cpu)
    ssbd_on = process_wants_ssbd(config.ssbd_mode, opted_in_prctl=True,
                                 uses_seccomp=False)
    machine.msr.set_ssbd(ssbd_on)
    results["spec_store_bypass"] = \
        attempt_store_bypass(machine, 0x42) is not None

    # MDS: does the exit path clear the buffers?
    machine = Machine(cpu)
    kernel_touched_secret(machine, 0x42)
    if config.mds_verw:
        machine.mode = Mode.KERNEL
        machine.run(verw_sequence())
        machine.mode = Mode.USER
    results["mds"] = bool(attempt_mds_sample(machine))

    # LazyFP: eager switching removes the stale registers.
    machine = Machine(cpu)
    fpu = FPUState(owner_pid=1, enabled=True, secret=0x42)
    if not config.eager_fpu:
        lazy_switch(fpu, new_pid=2)
    else:
        from repro.mitigations.lazyfp import eager_switch
        eager_switch(fpu, new_pid=2)
    results["lazyfp"] = attempt_lazyfp(machine, fpu, attacker_pid=2) is not None

    return results


def report(title: str, results: Dict[str, bool]) -> None:
    print(title)
    for attack, leaked in results.items():
        print(f"  {attack:18s} {'LEAKS' if leaked else 'blocked'}")
    print()


def main() -> None:
    cpu_key = sys.argv[1] if len(sys.argv) > 1 else "broadwell"
    print(f"Auditing mitigation configurations on {cpu_key}\n")
    report("mitigations=off:", audit(cpu_key, MitigationConfig.all_off()))
    report("Linux defaults:", audit(cpu_key, linux_default(get_cpu(cpu_key))))
    proposal = linux_default(get_cpu(cpu_key)).replace(mds_verw=False)
    report("performance-team proposal (mds=off):", audit(cpu_key, proposal))


if __name__ == "__main__":
    main()

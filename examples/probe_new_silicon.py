#!/usr/bin/env python3
"""Scenario: characterizing a hypothetical next-generation CPU.

The paper's section 6 probe is exactly the tool an OS vendor would point
at new silicon: poison the BTB in one privilege mode, see whether the
divider counter betrays transient execution in another.  This example
defines a *new* CPU model — a fictional "Nextgen Lake" with an eIBRS-style
mode-tagged BTB plus Zen-3-style opaque indexing — and runs the full
measurement battery against it, demonstrating how to extend the catalog.

It also prices the paper's section 7 proposal: hardware that recognizes
the index-masking cmov+load pattern and makes it free, projecting the
Octane overhead such a part would enjoy.

Run:  python examples/probe_new_silicon.py
"""

import dataclasses

from repro import Machine, get_cpu
from repro.core.microbench import kernel_entry_latencies, table5_row
from repro.core.probe import SCENARIOS, speculation_row
from repro.cpu.model import CostTable, PredictorBehavior, VulnerabilityFlags
from repro.jsengine.jit import JITCompiler, OpMix
from repro.mitigations import MitigationConfig

# --- define the fictional part ------------------------------------------ #

NEXTGEN = dataclasses.replace(
    get_cpu("ice_lake_server"),
    key="nextgen_lake",
    model="Imaginary 9999X",
    microarchitecture="Nextgen Lake",
    year=2026,
    costs=CostTable(
        syscall=30, sysret=25, swap_cr3=150,
        verw_clear=None, verw_legacy=12,
        indirect_base=1, ibrs_extra=0, generic_retpoline_extra=45,
        amd_retpoline_extra=None,
        ibpb=200, rsb_fill=30, lfence=6,
    ),
    vulns=VulnerabilityFlags(meltdown=False, l1tf=False, mds=False,
                             lazyfp=False),
    predictor=PredictorBehavior(
        supports_ibrs=True,
        supports_eibrs=True,
        btb_mode_tagged=True,    # eIBRS-style partitioning...
        btb_opaque_index=True,   # ...plus Zen-3-style opaque indexing
        eibrs_periodic_scrub=False,
    ),
)


def main() -> None:
    print(f"Characterizing {NEXTGEN.microarchitecture} "
          f"({NEXTGEN.model}, {NEXTGEN.year})\n")

    print("Speculation probe (IBRS off):")
    row = speculation_row(NEXTGEN, ibrs=False)
    for scenario in SCENARIOS:
        verdict = "SPECULATES" if row[scenario] else "safe"
        print(f"  {scenario.label:28s} {verdict}")
    assert not any(row.values()), "opaque indexing should defeat the probe"

    print("\nIndirect branch costs (Table 5 methodology):")
    t5 = table5_row(NEXTGEN, iterations=300)
    print(f"  baseline {t5.baseline:.0f}  IBRS {t5.ibrs_extra:+.0f}  "
          f"generic retpoline {t5.generic_extra:+.0f}")

    print("\nKernel entry latency with eIBRS (no periodic scrub designed "
          "in):")
    latencies = kernel_entry_latencies(NEXTGEN, entries=200)
    print(f"  {len(set(latencies))} distinct latency mode(s): "
          f"{sorted(set(latencies))}")

    # --- the section 7 proposal: free index masking -------------------- #
    print("\nProjecting the paper's section 7 idea (hardware recognizes "
          "the cmov+load masking pattern):")
    mix = OpMix(arith_cycles=12000, array_accesses=300, object_accesses=200,
                pointer_derefs=500, store_load_pairs=8, calls=150)
    machine = Machine(NEXTGEN)
    jit = JITCompiler(machine, MitigationConfig(js_index_masking=True))
    today = mix.array_accesses * jit.mask_extra_per_access()
    print(f"  index masking costs {today} cycles per iteration today;")
    print("  with pattern-detecting hardware the cmov stall disappears "
          "and only")
    print(f"  the {mix.array_accesses * machine.costs.cmov}-cycle cmov "
          "issue cost remains — the JIT would pick this up on day one "
          "(JITs recompile\n  for the host CPU automatically).")


if __name__ == "__main__":
    main()

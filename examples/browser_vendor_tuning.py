#!/usr/bin/env python3
"""Scenario: a browser vendor tuning its Spectre hardening budget.

The paper's Figure 3 shows ~20% of JavaScript performance going to
mitigations, with no hardware relief in sight.  A browser vendor deciding
which switches to ship needs exactly the analysis this library automates:

* per-mitigation score cost on the CPUs its users actually run;
* what each switch buys in security, demonstrated mechanically (the
  sandbox-escape attempts each one blocks);
* the SSBD interaction with the kernel's seccomp policy across kernel
  versions.

Run:  python examples/browser_vendor_tuning.py
"""

from repro import Machine, get_cpu
from repro.core import Settings, figure3
from repro.jsengine import (
    attempt_sandbox_oob_read,
    attempt_type_confusion,
    new_realm,
)
from repro.jsengine.octane import run_suite, suite_score
from repro.mitigations import linux_default

USER_CPUS = ("skylake_client", "ice_lake_client", "zen3")


def main() -> None:
    print("Per-mitigation Octane 2 score cost (stacked, like Figure 3):\n")
    results = figure3(cpus=[get_cpu(key) for key in USER_CPUS],
                      settings=Settings.fast())
    for result in results:
        parts = "  ".join(f"{c.knob.replace('js_', '')}={c.percent:.1f}%"
                          for c in result.contributions)
        print(f"  {result.cpu:16s} total {result.total_overhead_percent:5.1f}%"
              f"   {parts}")

    print("\nWhat each switch blocks (Skylake client):")
    machine = Machine(get_cpu("skylake_client"))
    attacker, victim = new_realm("ads.example"), new_realm("bank.example")
    oob_raw = attempt_sandbox_oob_read(machine, attacker, victim,
                                       index_masking=False)
    oob_masked = attempt_sandbox_oob_read(machine, attacker, victim,
                                          index_masking=True)
    print(f"  cross-site OOB read : raw={'LEAKS' if oob_raw else 'safe'}, "
          f"with index masking={'LEAKS' if oob_masked else 'safe'}")
    confusion_raw = attempt_type_confusion(machine, attacker,
                                           object_guards=False)
    confusion_guarded = attempt_type_confusion(machine, attacker,
                                               object_guards=True)
    print(f"  type confusion      : raw="
          f"{'LEAKS' if confusion_raw else 'safe'}, "
          f"with object guards={'LEAKS' if confusion_guarded else 'safe'}")

    print("\nThe SSBD/seccomp interaction across kernel versions (Zen 3):")
    cpu = get_cpu("zen3")
    for kernel in ((5, 14), (5, 16)):
        score = suite_score(run_suite(
            Machine(cpu, seed=1), linux_default(cpu, kernel=kernel),
            iterations=8, warmup=2))
        print(f"  kernel {kernel[0]}.{kernel[1]:2d}: suite score "
              f"{score:8.0f}")
    print("\n(5.16 stopped implying SSBD for seccomp processes; the "
          "vendor must decide\nwhether to opt back in via prctl.)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A guided tour of the section-6 speculation probe.

Walks the Figure 6 technique step by step on two contrasting CPUs —
Broadwell (everything speculates) and Cascade Lake (mode-tagged BTB) —
showing the raw counter reads at each stage, the counter-disagreement
case the paper describes in section 6.1, and the eIBRS periodic-scrub
fingerprint of section 6.2.2.

Run:  python examples/speculation_probe_tour.py
"""

from repro import Machine, Mode, get_cpu
from repro.cpu import counters as ctr
from repro.cpu import isa
from repro.cpu import msr as msrdef
from repro.core.microbench import kernel_entry_latencies
from repro.core.probe import (
    BRANCH_PC,
    NOP_TARGET,
    SCENARIOS,
    SpeculationProbe,
    VICTIM_TARGET,
)


def step(n: int, text: str) -> None:
    print(f"  [{n}] {text}")


def tour(cpu_key: str) -> None:
    cpu = get_cpu(cpu_key)
    print(f"\n=== {cpu.microarchitecture} ===")
    machine = Machine(cpu)
    probe = SpeculationProbe(machine)

    step(1, "register the landing pads: a divide at victim_target "
            f"({VICTIM_TARGET:#x}), nothing at nop_target "
            f"({NOP_TARGET:#x})")

    step(2, "train: execute the branch at the shared PC toward "
            "victim_target, in USER mode")
    probe.train(Mode.USER)
    step(2, f"    BTB now predicts {machine.btb.lookup(BRANCH_PC, Mode.USER):#x} "
            f"for pc {BRANCH_PC:#x}")

    step(3, "cross into the kernel with a real syscall instruction")
    machine.execute(isa.syscall_instr())

    step(4, "victim: read ARITH.DIVIDER_ACTIVE, run the branch with "
            "nop_target as its true target, read the counter again")
    before = machine.counters.read(ctr.DIVIDER_ACTIVE)
    machine.execute(isa.branch_indirect(NOP_TARGET, pc=BRANCH_PC))
    after = machine.counters.read(ctr.DIVIDER_ACTIVE)
    verdict = "speculated to the pad!" if after > before else \
        "no divider activity: the prediction was not consumed"
    step(4, f"    divider delta = {after - before} -> {verdict}")

    print("\n  full matrix for this part (IBRS off):")
    for scenario in SCENARIOS:
        fresh = Machine(cpu)
        result = SpeculationProbe(fresh).probe(scenario, trials=3)
        print(f"    {scenario.label:28s} "
              f"{'SPECULATES' if result else 'safe'}")


def counter_disagreement() -> None:
    print("\n=== section 6.1: when the two counters disagree ===")
    machine = Machine(get_cpu("broadwell"))
    probe = SpeculationProbe(machine)
    probe.train(Mode.USER)
    print("  after an IBPB, the branch still *counts* as mispredicted")
    machine.execute(isa.wrmsr(msrdef.IA32_PRED_CMD, msrdef.PRED_CMD_IBPB))
    misp0 = machine.counters.read(ctr.MISPREDICTED_INDIRECT)
    div0 = machine.counters.read(ctr.DIVIDER_ACTIVE)
    machine.execute(isa.branch_indirect(NOP_TARGET, pc=BRANCH_PC))
    print(f"  mispredict delta = "
          f"{machine.counters.read(ctr.MISPREDICTED_INDIRECT) - misp0}, "
          f"divider delta = "
          f"{machine.counters.read(ctr.DIVIDER_ACTIVE) - div0}")
    print("  -> entries were rewritten to a harmless gadget, not cleared;")
    print("     this is why the paper trusts the divider, not the "
          "mispredict count.")


def eibrs_fingerprint() -> None:
    print("\n=== section 6.2.2: the eIBRS periodic-scrub fingerprint ===")
    latencies = kernel_entry_latencies(get_cpu("cascade_lake"), entries=60)
    line = " ".join("S" if v > min(latencies) else "." for v in latencies)
    print(f"  60 consecutive kernel entries (S = slow): {line}")
    print("  slow entries carry a BTB flush: poisoning survives only "
          "across the '.' entries.")


def main() -> None:
    tour("broadwell")
    tour("cascade_lake")
    counter_disagreement()
    eibrs_fingerprint()


if __name__ == "__main__":
    main()

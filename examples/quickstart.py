#!/usr/bin/env python3
"""Quickstart: simulate one CPU, price its mitigations, run one attack.

Walks the core API end to end in under a minute:

1. pick a CPU model from the paper's catalog and boot a model kernel on
   it with Linux's default mitigations;
2. measure what a syscall costs with and without those mitigations;
3. demonstrate *why* the cost is paid: Meltdown works against the
   unmitigated kernel and fails against the mitigated one;
4. attribute the end-to-end LEBench overhead to individual mitigations,
   exactly like the paper's Figure 2.

Run:  python examples/quickstart.py
"""

from repro import Machine, MitigationConfig, get_cpu, linux_default
from repro.core import Settings, figure2
from repro.kernel import GETPID, Kernel
from repro.mitigations.meltdown import attempt_meltdown


def main() -> None:
    cpu = get_cpu("broadwell")
    print(f"CPU: {cpu.vendor} {cpu.model} ({cpu.microarchitecture}, "
          f"{cpu.year})")
    print(f"vulnerable to Meltdown: {cpu.vulns.meltdown}, "
          f"MDS: {cpu.vulns.mds}\n")

    # --- 2. syscall cost, bare vs mitigated ---------------------------- #
    bare = Kernel(Machine(cpu), MitigationConfig.all_off())
    mitigated = Kernel(Machine(cpu), linux_default(cpu))
    for _ in range(8):  # warm caches and predictors
        bare.syscall(GETPID)
        mitigated.syscall(GETPID)
    bare_cost = bare.syscall(GETPID)
    full_cost = mitigated.syscall(GETPID)
    print(f"getpid round trip, mitigations off : {bare_cost:5d} cycles")
    print(f"getpid round trip, Linux defaults  : {full_cost:5d} cycles "
          f"({full_cost / bare_cost:.1f}x)\n")

    # --- 3. the attack the overhead buys off --------------------------- #
    leaked = attempt_meltdown(bare.machine, secret_byte=0x42)
    print(f"Meltdown vs unmitigated kernel: leaked byte "
          f"{leaked:#04x}" if leaked is not None else "no leak")
    blocked = attempt_meltdown(mitigated.machine, secret_byte=0x42)
    print(f"Meltdown vs KPTI kernel       : "
          f"{'leaked ' + hex(blocked) if blocked is not None else 'blocked'}\n")

    # --- 4. Figure 2 attribution for this CPU -------------------------- #
    (result,) = figure2(cpus=[cpu], settings=Settings.fast())
    print(f"LEBench overhead from all mitigations: "
          f"{result.total_overhead_percent:.1f}%")
    for contribution in result.contributions:
        print(f"  {contribution.knob:12s} ({contribution.boot_param:12s}) "
              f"{contribution.percent:6.1f}%")
    print(f"  {'other':12s} {'':14s} {result.other_percent:6.1f}%")


if __name__ == "__main__":
    main()

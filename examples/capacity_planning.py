#!/usr/bin/env python3
"""Scenario: capacity planning for a custom service with sweeps.

A service owner wants to know how much the mitigation stack costs *their*
workload — not LEBench's — and where the pain comes from.  This example
composes the service with :class:`~repro.workloads.custom.WorkloadBuilder`
(a request handler: parse, two syscalls, some forwarding-heavy state
updates, periodic switches), prices it across candidate CPUs, then uses
the sweep tooling to answer two planning questions:

* how large would our requests have to be for the mitigation tax to stop
  mattering on the old fleet?
* how sensitive is our SSBD exposure (we run sandboxed, seccomp'd
  workers) to the forwarding density of the handler code?

Run:  python examples/capacity_planning.py
"""

from repro import get_cpu, linux_default
from repro.core.sweeps import (
    overhead_vs_operation_size,
    ssbd_overhead_vs_forwarding_density,
)
from repro.kernel import HandlerProfile
from repro.workloads.custom import WorkloadBuilder

RECV = HandlerProfile("svc_recv", work_cycles=2500, loads=12, stores=4,
                      indirect_branches=8, copy_bytes=512)
SEND = HandlerProfile("svc_send", work_cycles=2200, loads=6, stores=10,
                      indirect_branches=8, copy_bytes=512)

CANDIDATES = ("broadwell", "cascade_lake", "ice_lake_server", "zen3")


def service() -> WorkloadBuilder:
    return (WorkloadBuilder("request-handler")
            .syscall(RECV)
            .user_work(4000)          # parse + business logic
            .store_load_pairs(25)     # session/state updates
            .syscall(SEND)
            .context_switch_every(20)
            .process(uses_seccomp=True))


def main() -> None:
    print("Mitigation tax on the request handler, per candidate CPU:\n")
    for key in CANDIDATES:
        cpu = get_cpu(key)
        tax = service().overhead_percent(cpu, linux_default(cpu))
        print(f"  {cpu.microarchitecture:18s} {tax:6.1f}%")

    print("\nHow big must an operation be before the old fleet stops "
          "caring?\n")
    for key in ("broadwell", "ice_lake_server"):
        cpu = get_cpu(key)
        curve = overhead_vs_operation_size(cpu, linux_default(cpu))
        crossing = curve.first_below(5.0)
        print(f"  {cpu.microarchitecture:18s} overhead <5% once kernel "
              f"work exceeds ~{crossing:,.0f} cycles/op")

    print("\nSSBD exposure vs how forwarding-dense the handler code is "
          "(Zen 3 workers):\n")
    curve = ssbd_overhead_vs_forwarding_density(get_cpu("zen3"))
    for x, y in zip(curve.xs, curve.ys):
        bar = "#" * int(y)
        print(f"  {int(x):>4d} pairs/iter {y:6.1f}%  {bar}")
    print("\nActionable: either refactor the state updates (fewer pairs), "
          "move the\nworkers off the pre-5.16 seccomp policy, or don't "
          "deploy the Zen 3 fleet\nfor this service.")


if __name__ == "__main__":
    main()

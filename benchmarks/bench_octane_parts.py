"""Per-part Octane sensitivity: which workloads pay for which mitigation.

The paper reports suite-level Octane numbers; real Octane runs report
per-part scores, and the per-part sensitivities are where the mechanism
shows: array-heavy parts pay for index masking, shape-heavy parts for
object guards, pointer-chasing parts for poisoning, forwarding-dense
parts for SSBD.  This bench regenerates the per-part slowdown table and
asserts those orderings.
"""

from repro.core.reporting import render_table
from repro.cpu import Machine, get_cpu
from repro.jsengine.octane import OctaneRunner, SUITE, get_workload
from repro.mitigations import MitigationConfig

CPU = "cascade_lake"


def _slowdown(workload, config, iterations=8):
    cpu = get_cpu(CPU)
    base = OctaneRunner(Machine(cpu, seed=1),
                        MitigationConfig.all_off()).measure(
        workload, iterations=iterations, warmup=2)
    treated = OctaneRunner(Machine(cpu, seed=1), config).measure(
        workload, iterations=iterations, warmup=2)
    return 100 * (treated / base - 1)


MASKING = MitigationConfig(js_index_masking=True)
GUARDS = MitigationConfig(js_object_guards=True)
OTHER = MitigationConfig(js_other=True)


def test_per_part_sensitivities(save_artifact):
    rows = []
    table = {}
    for workload in SUITE:
        masking = _slowdown(workload, MASKING)
        guards = _slowdown(workload, GUARDS)
        other = _slowdown(workload, OTHER)
        table[workload.name] = (masking, guards, other)
        rows.append([workload.name, f"{masking:.1f}%", f"{guards:.1f}%",
                     f"{other:.1f}%"])
    save_artifact("octane_parts.txt", render_table(
        f"Octane per-part slowdown by mitigation ({CPU})",
        ["part", "index masking", "object guards", "other JS"], rows))

    # Array-heavy parts pay most for masking...
    assert table["navier-stokes"][0] > table["splay"][0]
    assert table["zlib"][0] > table["deltablue"][0]
    # ...shape-heavy parts for guards...
    assert table["deltablue"][1] > table["navier-stokes"][1]
    assert table["raytrace"][1] > table["zlib"][1]
    # ...and pointer-chasers for the poisoning bucket.
    assert table["splay"][2] > table["navier-stokes"][2]


def test_every_part_pays_something_under_full_hardening():
    full = MitigationConfig(js_index_masking=True, js_object_guards=True,
                            js_other=True)
    for workload in SUITE:
        assert _slowdown(workload, full, iterations=6) > 3.0, workload.name


def bench_one_part_measurement(benchmark):
    workload = get_workload("richards")
    benchmark.pedantic(lambda: _slowdown(workload, MASKING, iterations=6),
                       rounds=3, iterations=1)

"""Observability overhead guard: the null tracer must be (nearly) free.

The instrumentation points sit on the hottest paths in the simulator
(every syscall, VM exit, and JS iteration), gated on ``tracer.enabled``.
This bench compares the instrumented-but-untraced syscall loop against a
replica of the uninstrumented pre-obs path, and asserts the null-tracer
penalty stays under 5%.  Active tracing is timed too, for the record —
it is allowed to cost real time (it allocates a span per crossing).
"""

import time

from repro.cpu import Machine, get_cpu
from repro.kernel import GETPID, Kernel
from repro.mitigations import linux_default
from repro.obs import (
    NULL_TRACER,
    EventTimeline,
    LeakageTracer,
    SpanTracer,
    use_leakage,
    use_timeline,
    use_tracer,
)

LOOPS = 3000
REPEATS = 7
BUDGET = 0.05  # null tracer may cost at most 5% over the seed path


def _seed_syscall(kernel, profile):
    """The pre-observability syscall body, verbatim: the seed baseline."""
    machine = kernel.machine
    cycles = machine.run(kernel._entry)
    cycles += machine.run(kernel._compiled(profile))
    cycles += machine.run(kernel._exit)
    return cycles


def _fresh_kernel():
    cpu = get_cpu("broadwell")
    return Kernel(Machine(cpu), linux_default(cpu))


def _time_loop(syscall_fn, profile):
    """Best-of-N wall time for LOOPS syscalls (min defeats scheduler noise)."""
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for _ in range(LOOPS):
            syscall_fn(profile)
        best = min(best, time.perf_counter() - start)
    return best


def test_null_tracer_overhead_under_budget():
    assert not NULL_TRACER.enabled

    kernel = _fresh_kernel()
    seed = _time_loop(lambda p: _seed_syscall(kernel, p), GETPID)

    kernel = _fresh_kernel()
    nulled = _time_loop(kernel.syscall, GETPID)

    overhead = nulled / seed - 1.0
    print(f"\nseed path      : {1e6 * seed / LOOPS:8.3f} us/syscall")
    print(f"null tracer    : {1e6 * nulled / LOOPS:8.3f} us/syscall "
          f"({100.0 * overhead:+.2f}%)")
    assert overhead < BUDGET, (
        f"null-tracer syscall path is {100.0 * overhead:.1f}% slower than "
        f"the uninstrumented seed path (budget {100.0 * BUDGET:.0f}%)")


def test_active_tracing_records_every_syscall():
    """Active tracing is allowed to cost; it must at least be complete."""
    tracer = SpanTracer()
    with use_tracer(tracer):
        kernel = _fresh_kernel()
        start = time.perf_counter()
        for _ in range(LOOPS):
            kernel.syscall(GETPID)
        elapsed = time.perf_counter() - start
    spans = tracer.find("kernel.syscall")
    assert len(spans) == LOOPS
    print(f"\nactive tracing : {1e6 * elapsed / LOOPS:8.3f} us/syscall, "
          f"{len(tracer.spans)} spans recorded")


def test_leakage_tracer_off_within_noise():
    """The taint-tracer hooks are one ``is None`` test per site when no
    tracer is attached: the untraced syscall loop must stay within the
    same noise budget as the null span tracer.  The traced loop is timed
    for the record — taint bookkeeping is allowed to cost."""
    kernel = _fresh_kernel()
    seed = _time_loop(lambda p: _seed_syscall(kernel, p), GETPID)

    kernel = _fresh_kernel()
    assert kernel.machine.leakage is None
    off = _time_loop(kernel.syscall, GETPID)

    with use_leakage(LeakageTracer()):
        traced = _fresh_kernel()
    assert traced.machine.leakage is not None
    on = _time_loop(traced.syscall, GETPID)

    overhead = off / seed - 1.0
    print(f"\nseed path      : {1e6 * seed / LOOPS:8.3f} us/syscall")
    print(f"leakage off    : {1e6 * off / LOOPS:8.3f} us/syscall "
          f"({100.0 * overhead:+.2f}%)")
    print(f"leakage on     : {1e6 * on / LOOPS:8.3f} us/syscall "
          f"({100.0 * (on / seed - 1.0):+.2f}%)")
    assert overhead < BUDGET, (
        f"leakage-off syscall path is {100.0 * overhead:.1f}% slower than "
        f"the uninstrumented seed path (budget {100.0 * BUDGET:.0f}%)")


def test_timeline_detached_within_noise():
    """The event-timeline hooks share the leakage observer slots, so a
    detached timeline costs the same one ``is None`` test per site: the
    unrecorded syscall loop must stay within the seed-path noise budget.
    The recording loop is timed for the record, and its memory must stay
    bounded by the ring regardless of how long it runs."""
    kernel = _fresh_kernel()
    seed = _time_loop(lambda p: _seed_syscall(kernel, p), GETPID)

    kernel = _fresh_kernel()
    assert kernel.machine.timeline is None
    off = _time_loop(kernel.syscall, GETPID)

    capacity = 1024
    with use_timeline(EventTimeline(capacity=capacity)) as timeline:
        recording = _fresh_kernel()
    assert recording.machine.timeline is timeline
    on = _time_loop(recording.syscall, GETPID)
    held = len(timeline.events)
    assert held <= capacity, (
        f"ring held {held} events, capacity {capacity}")
    assert timeline.total == held + timeline.dropped

    overhead = off / seed - 1.0
    print(f"\nseed path      : {1e6 * seed / LOOPS:8.3f} us/syscall")
    print(f"timeline off   : {1e6 * off / LOOPS:8.3f} us/syscall "
          f"({100.0 * overhead:+.2f}%)")
    print(f"timeline on    : {1e6 * on / LOOPS:8.3f} us/syscall "
          f"({100.0 * (on / seed - 1.0):+.2f}%), "
          f"{timeline.total} events ({held} held, "
          f"{timeline.dropped} dropped)")
    assert overhead < BUDGET, (
        f"timeline-off syscall path is {100.0 * overhead:.1f}% slower than "
        f"the uninstrumented seed path (budget {100.0 * BUDGET:.0f}%)")


def bench_null_tracer_syscalls(benchmark):
    """pytest-benchmark view of the untraced hot path."""
    kernel = _fresh_kernel()
    benchmark.pedantic(
        lambda: [kernel.syscall(GETPID) for _ in range(200)],
        rounds=5, iterations=1)

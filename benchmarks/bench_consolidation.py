"""Consolidation host: per-process mitigations under real multitasking.

Generalizes the paper's context-switch microbenchmarks into the shape a
cloud host runs (mixed plain/sandboxed tasks under preemptive
scheduling) and regenerates the per-CPU overhead table for it.
"""

from repro.core.reporting import render_table
from repro.cpu import all_cpus, get_cpu
from repro.mitigations import linux_default
from repro.workloads.consolidation import (
    ConsolidationMix,
    consolidation_overhead_percent,
    run_host,
)

MIX = ConsolidationMix(plain_tasks=3, sandboxed_tasks=3,
                       work_per_task=60_000, timeslice_cycles=10_000)


def test_consolidation_overheads(save_artifact):
    rows = []
    overheads = {}
    for cpu in all_cpus():
        pct = consolidation_overhead_percent(cpu, linux_default(cpu), MIX)
        overheads[cpu.key] = pct
        rows.append([cpu.key, f"{pct:.1f}%"])
        assert 0 < pct < 60, cpu.key
    save_artifact("consolidation.txt", render_table(
        "Consolidation host (3 plain + 3 seccomp'd tasks, 10k-cycle "
        "slices): mitigation overhead",
        ["CPU", "overhead"], rows))

    # The boundary-heavy pattern tracks the boundary-mitigation story:
    # old Intel (PTI+verw on every tick/switch) pays the most, the
    # eIBRS-era parts the least.
    assert overheads["broadwell"] > overheads["cascade_lake"] > \
        overheads["ice_lake_server"]
    assert overheads["zen"] > overheads["zen3"]


def bench_consolidation_host(benchmark):
    cpu = get_cpu("zen2")
    config = linux_default(cpu)
    benchmark.pedantic(lambda: run_host(cpu, config, MIX),
                       rounds=3, iterations=1)

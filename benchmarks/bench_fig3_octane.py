"""Figure 3: Octane 2 slowdown from JS and OS mitigations, per CPU."""

from repro.core import study
from repro.core.reporting import render_figure3
from repro.cpu import Machine, all_cpus, get_cpu
from repro.jsengine import octane
from repro.mitigations import MitigationConfig


def test_figure3_reproduces_paper_shape(save_artifact, fast_settings):
    results = study.figure3(all_cpus(), fast_settings)

    for result in results:
        # 'Overhead on Octane 2 has remained in the range of 15% to 25%.'
        assert 13 < result.total_overhead_percent < 27, result.cpu
        masking = result.contribution_for("js_index_masking").percent
        guards = result.contribution_for("js_object_guards").percent
        # '~4% index masking, ~6% object mitigations' with room for noise.
        assert 1.5 < masking < 6.5, result.cpu
        assert 3.5 < guards < 9.5, result.cpu
        # SSBD (via seccomp) is a real, positive component everywhere.
        assert result.contribution_for("ssbd").percent > 1.5, result.cpu

    # Unlike the OS boundary, no hardware generation fixed this: the
    # newest parts pay about as much as the oldest.
    by_cpu = {r.cpu: r.total_overhead_percent for r in results}
    assert by_cpu["ice_lake_server"] > 0.6 * by_cpu["broadwell"]

    save_artifact("figure3.txt", render_figure3(results))


def bench_octane_suite_one_config(benchmark):
    cpu = get_cpu("zen3")
    benchmark.pedantic(
        lambda: octane.run_suite(Machine(cpu, seed=1),
                                 MitigationConfig.all_off(),
                                 iterations=6, warmup=2),
        rounds=3, iterations=1)

"""Executor harness bench: parallel speedup and warm-cache behaviour.

Unlike the paper-artifact benches, this one measures the *harness*
itself: a fixed 8-cell Figure 2 grid run serially, then through the
process pool, then again against a warm cache.  It asserts the two
hard engine guarantees — parallel results identical to serial, warm
cache executes zero cells — and records the measured speedups as an
artifact.  The parallel speedup itself is reported but not asserted:
on a loaded single-core CI box the pool can legitimately lose to the
inline path (fork + pickle overhead), and that is not a correctness
bug.
"""

import os
import time

from repro.core import study
from repro.core.executor import StudyExecutor

JOBS = 4
CPUS = None  # all eight catalog CPUs -> 8 cells


def _timed_run(fast_settings, **executor_kwargs):
    executor = StudyExecutor(**executor_kwargs)
    start = time.perf_counter()
    results = study.figure2(CPUS, fast_settings, executor=executor)
    return results, time.perf_counter() - start, executor.stats


def test_parallel_speedup_and_warm_cache(save_artifact, fast_settings,
                                         tmp_path):
    cache_dir = str(tmp_path / "cache")

    serial, t_serial, _ = _timed_run(fast_settings, jobs=1)
    parallel, t_parallel, _ = _timed_run(fast_settings, jobs=JOBS)
    assert parallel == serial, "parallel run diverged from serial run"

    # Populate, then re-run against the warm cache.
    _timed_run(fast_settings, jobs=1, cache_dir=cache_dir)
    cached, t_cached, stats = _timed_run(fast_settings, jobs=1,
                                         cache_dir=cache_dir)
    assert cached == serial
    assert stats.executed == 0, "warm-cache run simulated cells"
    assert stats.cache_hits == stats.total

    lines = [
        "Executor harness: fast Figure 2, "
        f"{stats.total} cells (all catalog CPUs)",
        "",
        f"serial   (--jobs 1)     : {t_serial:7.3f} s",
        f"parallel (--jobs {JOBS})     : {t_parallel:7.3f} s   "
        f"speedup {t_serial / t_parallel:5.2f}x over serial",
        f"warm cache              : {t_cached:7.3f} s   "
        f"speedup {t_serial / t_cached:5.2f}x over serial "
        f"({stats.cache_hits}/{stats.total} hits, 0 executed)",
        "",
        f"host CPUs: {os.cpu_count()}",
    ]
    save_artifact("executor_speedup.txt", "\n".join(lines) + "\n")


def bench_warm_cache_lookup(benchmark, fast_settings, tmp_path):
    """pytest-benchmark view of a fully-cached 8-cell study."""
    cache_dir = str(tmp_path / "cache")
    _timed_run(fast_settings, jobs=1, cache_dir=cache_dir)  # populate
    benchmark.pedantic(
        lambda: _timed_run(fast_settings, jobs=1, cache_dir=cache_dir),
        rounds=5, iterations=1)

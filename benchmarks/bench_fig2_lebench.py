"""Figure 2: LEBench mitigation overhead per CPU, attributed per knob."""

from repro.core import study
from repro.core.reporting import render_figure2
from repro.cpu import Machine, all_cpus, get_cpu
from repro.mitigations import MitigationConfig
from repro.workloads import lebench


def test_figure2_reproduces_paper_shape(save_artifact, fast_settings):
    results = study.figure2(all_cpus(), fast_settings)
    by_cpu = {r.cpu: r for r in results}

    # The decline headline: >30% old Intel -> <5% new Intel; AMD low.
    assert by_cpu["broadwell"].total_overhead_percent > 30
    assert by_cpu["skylake_client"].total_overhead_percent > 25
    assert by_cpu["ice_lake_client"].total_overhead_percent < 5
    assert by_cpu["ice_lake_server"].total_overhead_percent < 5
    for key in ("zen", "zen2", "zen3"):
        assert by_cpu[key].total_overhead_percent < 10, key

    # Attribution: PTI and MDS dominate the vulnerable parts.
    for key in ("broadwell", "skylake_client"):
        result = by_cpu[key]
        assert result.contribution_for("pti").percent > 8
        assert result.contribution_for("mds").percent > 8

    # Immune parts never even measure those knobs.
    assert by_cpu["zen3"].contribution_for("pti") is None
    assert by_cpu["ice_lake_server"].contribution_for("mds") is None

    save_artifact("figure2.txt", render_figure2(results))


def bench_lebench_suite_one_config(benchmark):
    """Time one full LEBench suite pass (the Figure 2 inner loop)."""
    cpu = get_cpu("broadwell")
    benchmark.pedantic(
        lambda: lebench.run_suite(Machine(cpu, seed=1),
                                  MitigationConfig.all_off(),
                                  iterations=8, warmup=2),
        rounds=3, iterations=1)

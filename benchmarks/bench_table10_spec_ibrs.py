"""Table 10: speculation matrix with IBRS enabled."""

from repro.core.probe import SCENARIOS, speculation_matrix, speculation_row
from repro.core.reporting import render_speculation_matrix
from repro.cpu import all_cpus, get_cpu

PAPER = {  # None = the paper's N/A row (no IBRS support)
    "broadwell":       (False, False, False, False, False),
    "skylake_client":  (False, False, False, False, False),
    "cascade_lake":    (False, True, True, True, True),
    "ice_lake_client": (False, True, False, True, False),
    "ice_lake_server": (False, True, True, True, True),
    "zen":             None,
    "zen2":            (False, False, False, False, False),
    "zen3":            (False, False, False, False, False),
}


def test_table10_reproduces_paper(save_artifact):
    matrix = speculation_matrix(all_cpus(), ibrs=True)
    for key, expected in PAPER.items():
        row = matrix[key]
        if expected is None:
            assert row is None, key
        else:
            assert tuple(row[s] for s in SCENARIOS) == expected, key
    save_artifact("table10.txt",
                  render_speculation_matrix(matrix, ibrs=True))


def test_ibrs_blocks_user_to_kernel_everywhere_it_exists():
    """The security claim IBRS makes, verified on every supporting part."""
    for cpu in all_cpus():
        row = speculation_row(cpu, ibrs=True, trials=3)
        if row is not None:
            assert row[SCENARIOS[0]] is False, cpu.key


def bench_probe_with_ibrs(benchmark):
    benchmark(lambda: speculation_row(get_cpu("cascade_lake"), ibrs=True,
                                      trials=3))

"""Ablation: PCID support under KPTI.

Paper 5.1: both Meltdown-vulnerable parts support PCIDs, which 'allow many
TLB flushes to be avoided, and makes TLB impacts marginal compared to the
direct cost of switching the root page table pointer'.  We ablate PCID
away and show the indirect TLB cost appearing.
"""

import dataclasses

from repro.core.reporting import render_table
from repro.cpu import Machine, get_cpu
from repro.kernel import Kernel
from repro.mitigations import MitigationConfig
from repro.workloads.lebench import get_case, LEBenchRunner


def _machine(cpu_key, pcid):
    cpu = get_cpu(cpu_key)
    if not pcid:
        cpu = dataclasses.replace(cpu, supports_pcid=False)
    return Machine(cpu, seed=1)


def _getpid_cost(cpu_key, pcid):
    kernel = Kernel(_machine(cpu_key, pcid), MitigationConfig(pti=True))
    runner = LEBenchRunner(kernel)
    return runner.measure_case(get_case("small_read"), iterations=16,
                               warmup=4)


def test_pcid_keeps_tlb_costs_marginal(save_artifact):
    rows = []
    for key in ("broadwell", "skylake_client"):
        with_pcid = _getpid_cost(key, pcid=True)
        without = _getpid_cost(key, pcid=False)
        penalty = 100 * (without / with_pcid - 1)
        rows.append([key, f"{with_pcid:.0f}", f"{without:.0f}",
                     f"{penalty:.1f}%"])
        # No-PCID KPTI is measurably worse...
        assert without > with_pcid
        # ...but the paper's point holds: with PCIDs, the TLB effect is
        # marginal next to the cr3-write cost itself (bounded here).
        assert penalty < 50
    save_artifact("ablate_pcid.txt", render_table(
        "Ablation: KPTI small_read cycles with and without PCID",
        ["CPU", "with PCID", "without PCID", "no-PCID penalty"], rows))


def bench_kpti_syscall_with_pcid(benchmark):
    kernel = Kernel(_machine("broadwell", True), MitigationConfig(pti=True))
    runner = LEBenchRunner(kernel)
    case = get_case("getpid")
    benchmark(lambda: runner.run_op(case))

"""Ablation: Speculative Load Hardening vs the targeted JIT mitigations.

Paper section 2 positions SLH as the comprehensive-but-costly option.
This bench prices both strategies on the Octane op mixes per CPU: the
targeted index-masking/object-guard set lands at the paper's ~10% JS
share, while SLH's mask-every-load tax is a multiple of that — the
quantitative reason JIT vendors ship the targeted set.
"""

from repro.core.reporting import render_table
from repro.cpu import Machine, all_cpus, get_cpu
from repro.cpu.isa import Op
from repro.jsengine.jit import JITCompiler
from repro.jsengine.octane import SUITE
from repro.jsengine.slh import SLHCompiler
from repro.mitigations import MitigationConfig

TARGETED = MitigationConfig(js_index_masking=True, js_object_guards=True,
                            js_other=True)


def _work_cycles(block):
    return sum(i.value for i in block if i.op is Op.WORK)


def _suite_cycles(compiler) -> float:
    total = 0
    for workload in SUITE:
        total += _work_cycles(
            compiler.compile_iteration(workload.mix, heap_base=0x4000_0000))
    return total


def test_slh_vs_targeted_across_cpus(save_artifact):
    rows = []
    for cpu in all_cpus():
        machine = Machine(cpu)
        bare = _suite_cycles(JITCompiler(machine, MitigationConfig.all_off()))
        targeted = _suite_cycles(JITCompiler(machine, TARGETED))
        slh = _suite_cycles(SLHCompiler(machine))
        targeted_pct = 100 * (targeted / bare - 1)
        slh_pct = 100 * (slh / bare - 1)
        rows.append([cpu.key, f"{targeted_pct:.1f}%", f"{slh_pct:.1f}%",
                     f"{slh_pct / targeted_pct:.1f}x"])
        # SLH always costs strictly more than the targeted set.
        assert slh_pct > targeted_pct, cpu.key
        # And it is 'considerable': beyond anything the paper measured
        # for the shipped JS mitigations.
        assert slh_pct > 15, cpu.key
    save_artifact("ablate_slh.txt", render_table(
        "Ablation: JIT-compiled Octane overhead — targeted mitigations vs "
        "Speculative Load Hardening",
        ["CPU", "targeted (JIT)", "SLH", "ratio"], rows))


def test_slh_security_covers_what_targeted_does():
    from repro.jsengine.slh import slh_blocks_all_v1_variants
    for key in ("broadwell", "zen3"):
        assert slh_blocks_all_v1_variants(Machine(get_cpu(key)))


def bench_slh_compilation(benchmark):
    machine = Machine(get_cpu("zen3"))
    compiler = SLHCompiler(machine)
    benchmark(lambda: _suite_cycles(compiler))

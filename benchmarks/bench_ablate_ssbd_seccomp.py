"""Ablation: SSBD policy — pre-5.16 (seccomp implies SSBD) vs 5.16+.

Paper 4.3/7: Firefox uses seccomp, so pre-5.16 kernels silently enabled
SSBD for it; Linux 5.16 stopped doing that.  This bench quantifies the
Octane score the policy change returns, per CPU.
"""

from repro.core.reporting import render_table
from repro.cpu import Machine, all_cpus, get_cpu
from repro.jsengine import octane
from repro.mitigations import linux_default


def _score(cpu, kernel):
    scores = octane.run_suite(Machine(cpu, seed=1),
                              linux_default(cpu, kernel=kernel),
                              iterations=8, warmup=2)
    return octane.suite_score(scores)


def test_linux_5_16_recovers_the_ssbd_share(save_artifact):
    rows = []
    for cpu in all_cpus():
        old = _score(cpu, (5, 14))
        new = _score(cpu, (5, 16))
        gain = 100 * (new / old - 1)
        rows.append([cpu.key, f"{old:.0f}", f"{new:.0f}", f"{gain:+.1f}%"])
        # Every part gains; the gain tracks its SSBD load penalty.
        assert new > old, cpu.key
    save_artifact("ablate_ssbd_seccomp.txt", render_table(
        "Ablation: Octane suite score under pre-5.16 (seccomp->SSBD) vs "
        "5.16+ (prctl-only) policy",
        ["CPU", "score (5.14)", "score (5.16)", "gain"], rows))


def test_gain_largest_on_zen3():
    """Zen 3 has the worst SSBD penalty, so the policy change helps it
    most — the same gradient as Figure 5."""
    gains = {}
    for key in ("broadwell", "zen3"):
        cpu = get_cpu(key)
        gains[key] = _score(cpu, (5, 16)) / _score(cpu, (5, 14))
    assert gains["zen3"] > gains["broadwell"]


def bench_octane_under_516_policy(benchmark):
    cpu = get_cpu("zen3")
    benchmark.pedantic(lambda: _score(cpu, (5, 16)), rounds=3, iterations=1)

"""Table 9: speculation matrix with IBRS disabled (the section 6 probe)."""

from repro.core.probe import SCENARIOS, speculation_matrix
from repro.core.reporting import render_speculation_matrix
from repro.cpu import Machine, all_cpus, get_cpu

PAPER = {  # column order: u->k(sc), u->u(sc), k->k(sc), u->u, k->k
    "broadwell":       (True, True, True, True, True),
    "skylake_client":  (True, True, True, True, True),
    "cascade_lake":    (False, True, True, True, True),
    "ice_lake_client": (False, True, True, True, True),
    "ice_lake_server": (False, True, True, True, True),
    "zen":             (True, True, True, True, True),
    "zen2":            (True, True, True, True, True),
    "zen3":            (False, False, False, False, False),
}


def test_table9_reproduces_paper(save_artifact):
    matrix = speculation_matrix(all_cpus(), ibrs=False)
    for key, expected in PAPER.items():
        assert tuple(matrix[key][s] for s in SCENARIOS) == expected, key
    save_artifact("table9.txt",
                  render_speculation_matrix(matrix, ibrs=False))


def bench_probe_full_row(benchmark):
    """Time running all five probe scenarios on one CPU."""
    from repro.core.probe import speculation_row
    benchmark(lambda: speculation_row(get_cpu("broadwell"), ibrs=False,
                                      trials=3))

"""Figure 5: SSBD slowdown on the PARSEC trio across all CPUs."""

from repro.core import study
from repro.core.reporting import render_figure5
from repro.cpu import Machine, all_cpus, get_cpu
from repro.mitigations import linux_default
from repro.workloads import parsec


def test_figure5_reproduces_paper_shape(save_artifact, fast_settings):
    results = study.figure5(all_cpus(), settings=fast_settings)
    table = {(r.cpu, r.workload): r.overhead_percent for r in results}

    # Peak: 'as much as 34%' — Zen 3 swaptions.
    peak_cpu, peak_wl = max(table, key=table.get)
    assert (peak_cpu, peak_wl) == ("zen3", "swaptions")
    assert 28 < table[("zen3", "swaptions")] < 40

    # Per-workload ordering on every CPU: swaptions > bodytrack > facesim.
    for cpu in all_cpus():
        s = table[(cpu.key, "swaptions")]
        b = table[(cpu.key, "bodytrack")]
        f = table[(cpu.key, "facesim")]
        assert s > b > f > 0, cpu.key

    # 'Trending worse over time' within each vendor.
    intel = [table[(k, "swaptions")] for k in
             ("broadwell", "skylake_client", "cascade_lake",
              "ice_lake_client", "ice_lake_server")]
    assert intel == sorted(intel)
    amd = [table[(k, "swaptions")] for k in ("zen", "zen2", "zen3")]
    assert amd == sorted(amd)

    save_artifact("figure5.txt", render_figure5(results))


def bench_parsec_ssbd_pair(benchmark):
    cpu = get_cpu("zen3")
    config = linux_default(cpu)

    def pair():
        base = parsec.run_workload(Machine(cpu, seed=1), config,
                                   parsec.SWAPTIONS, iterations=8, warmup=2)
        ssbd = parsec.run_workload(Machine(cpu, seed=1), config,
                                   parsec.SWAPTIONS, force_ssbd=True,
                                   iterations=8, warmup=2)
        return ssbd / base

    benchmark.pedantic(pair, rounds=3, iterations=1)

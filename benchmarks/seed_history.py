"""Seed the committed run-history fixture from the BENCH_* baselines.

Rebuilds ``benchmarks/baselines/history.db`` from every committed
``BENCH_<n>.json``, oldest first, so ``spectresim history diff`` and
``spectresim history report`` work out of the box on a fresh checkout.

Baselines recorded before provenance carried a code fingerprint
(``BENCH_1.json``) — or by any checkout other than this one — cannot
pass the fingerprint gate, so they are recorded with ``allow_dirty=True``
and show up flagged in listings and on the dashboard.  That is the
honest state: the fixture says "these numbers came from other code".

Baselines predating the taint tracer carry no ``leakage`` block.  The
leakage surface is not a measurement of the recorded numbers — it is a
deterministic function of the simulator under a policy and seed — so the
newest baseline is seeded with a freshly computed snapshot, giving the
dashboard's leakage-matrix panel data on a fresh checkout.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/seed_history.py
"""

import glob
import os
import re
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs.baseline import leakage_snapshot, load_bench  # noqa: E402
from repro.obs.history import HistoryStore          # noqa: E402
from repro.obs.provenance import code_fingerprint   # noqa: E402

BASELINES = os.path.join(os.path.dirname(__file__), "baselines")
DB_PATH = os.path.join(BASELINES, "history.db")


def main() -> int:
    paths = sorted(
        glob.glob(os.path.join(BASELINES, "BENCH_*.json")),
        key=lambda p: int(re.search(r"BENCH_(\d+)", p).group(1)))
    if not paths:
        print("seed_history: no BENCH_*.json baselines found", file=sys.stderr)
        return 1
    if os.path.exists(DB_PATH):
        os.unlink(DB_PATH)
    fingerprint = code_fingerprint()
    with HistoryStore(DB_PATH) as store:
        for path in paths:
            name = os.path.basename(path)
            payload = load_bench(path)
            recorded = payload.get("provenance", {}).get("code_fingerprint")
            dirty = recorded != fingerprint
            note = ""
            if path == paths[-1] and "leakage" not in payload:
                payload = dict(payload)
                payload["leakage"] = leakage_snapshot()
                note = " (+leakage snapshot)"
            run_id = store.record_payload(payload, command=f"bench {name}",
                                          kind="bench", allow_dirty=True)
            flag = " (flagged dirty)" if dirty else ""
            print(f"seed_history: {name} -> run {run_id}{flag}{note}")
        print(f"seed_history: {len(store)} run(s) -> {DB_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Table 4: verw buffer-clear cycles (MDS mitigation primitive)."""

import pytest

from repro.core import microbench as mb
from repro.core.reporting import render_table4
from repro.cpu import Machine, all_cpus, get_cpu

PAPER = {
    "broadwell": 610, "skylake_client": 518, "cascade_lake": 458,
    "ice_lake_client": None, "ice_lake_server": None,
    "zen": None, "zen2": None, "zen3": None,
}


def test_table4_reproduces_paper(save_artifact):
    values = {cpu.key: mb.table4_value(cpu, iterations=500)
              for cpu in all_cpus()}
    for key, expected in PAPER.items():
        if expected is None:
            assert values[key] is None, key
        else:
            assert values[key] == pytest.approx(expected, abs=1), key
    save_artifact("table4.txt", render_table4(values))


def bench_verw_loop(benchmark):
    machine = Machine(get_cpu("skylake_client"))
    benchmark(lambda: mb.measure_verw(machine, iterations=200))

"""Table 2: the CPU catalog identity data."""

from repro.core.reporting import render_table2
from repro.cpu import Machine, all_cpus, get_cpu


def test_table2_reproduces_paper(save_artifact):
    out = render_table2()
    for needle in ("E5-2640v4", "i7-6600U", "Xeon Silver 4210R",
                   "i5-10351G1", "Xeon Gold 6354", "Ryzen 3 1200",
                   "EPYC 7452", "Ryzen 5 5600X"):
        assert needle in out
    save_artifact("table2.txt", out)


def bench_machine_construction(benchmark):
    """Time bringing up one full machine (all microarchitectural state)."""
    benchmark(lambda: [Machine(cpu) for cpu in all_cpus()])

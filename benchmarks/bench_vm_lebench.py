"""Section 4.4a: LEBench inside a VM — host mitigations within ±3%."""

from repro.core import study
from repro.core.reporting import render_paired
from repro.cpu import Machine, all_cpus, get_cpu
from repro.mitigations import MitigationConfig
from repro.workloads import vm_lebench


def test_vm_lebench_reproduces_paper_band(save_artifact, fast_settings):
    results = study.vm_lebench_overheads(all_cpus(), fast_settings)
    for r in results:
        assert abs(r.overhead_percent) < 3.0, r.cpu
    save_artifact("vm_lebench.txt", render_paired(
        results, "Section 4.4: LEBench in a VM, host mitigations on vs off"))


def test_host_mitigations_cheaper_than_guest_mitigations(fast_settings):
    """The boundary matters: the same knobs cost ~0 from the host side
    but full price inside the guest."""
    import numpy as np
    from repro.mitigations import linux_default
    cpu = get_cpu("broadwell")

    def geo(host, guest):
        res = vm_lebench.run_suite(Machine(cpu, seed=1), host,
                                   guest_config=guest,
                                   iterations=10, warmup=3)
        return float(np.exp(np.mean(np.log(list(res.values())))))

    off = MitigationConfig.all_off()
    full = linux_default(cpu)
    host_cost = geo(full, off) / geo(off, off)
    guest_cost = geo(off, full) / geo(off, off)
    assert guest_cost > host_cost + 0.10


def bench_guest_lebench_suite(benchmark):
    cpu = get_cpu("cascade_lake")
    benchmark.pedantic(
        lambda: vm_lebench.run_suite(Machine(cpu, seed=1),
                                     MitigationConfig.all_off(),
                                     iterations=8, warmup=2),
        rounds=3, iterations=1)

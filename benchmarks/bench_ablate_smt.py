"""Ablation: disabling SMT as the alternative MDS mitigation.

Paper 3.3 / Table 1: hyperthreading off closes the cross-thread MDS
channel but 'would have an even larger cost' than verw clearing, so Linux
leaves SMT on by default.  This bench prices both options side by side:
the verw tax on a syscall-heavy workload vs the throughput capacity lost
to turning SMT off.
"""

import numpy as np

from repro.core.reporting import render_table
from repro.cpu import Machine, all_cpus, get_cpu
from repro.mitigations import MitigationConfig
from repro.mitigations.mds import smt_effective_threads
from repro.workloads.lebench import run_suite

MDS_PARTS = ("broadwell", "skylake_client", "cascade_lake")


def _verw_tax(cpu):
    off = run_suite(Machine(cpu, seed=1), MitigationConfig.all_off(),
                    iterations=10, warmup=3)
    verw = run_suite(Machine(cpu, seed=1), MitigationConfig(mds_verw=True),
                     iterations=10, warmup=3)
    return float(np.exp(np.mean([np.log(verw[n] / off[n]) for n in off]))) - 1


def _smt_tax(cpu):
    on = smt_effective_threads(cpu.cores, True, cpu.smt_yield)
    off = smt_effective_threads(cpu.cores, False, cpu.smt_yield)
    return (on - off) / on


def test_smt_off_costs_more_than_verw_for_throughput(save_artifact):
    rows = []
    for key in MDS_PARTS:
        cpu = get_cpu(key)
        verw_tax = _verw_tax(cpu)
        smt_tax = _smt_tax(cpu)
        rows.append([key, f"{100 * verw_tax:.1f}%", f"{100 * smt_tax:.1f}%"])
    save_artifact("ablate_smt.txt", render_table(
        "Ablation: MDS mitigation cost — verw tax (LEBench geomean) vs "
        "SMT-off capacity loss",
        ["CPU", "verw tax", "SMT-off capacity loss"], rows))

    # The default Linux chose: for throughput-bound servers, losing the
    # SMT yield (20%) exceeds the verw tax on Cascade Lake, though not on
    # the syscall-saturated worst case of older parts.
    cascade = get_cpu("cascade_lake")
    assert _smt_tax(cascade) > _verw_tax(cascade)


def test_smt_off_closes_the_cross_thread_channel():
    """The security side of the tradeoff: with SMT off there is no
    concurrent sibling to sample from."""
    for key in MDS_PARTS:
        cpu = get_cpu(key)
        assert smt_effective_threads(cpu.cores, False) == cpu.cores


def bench_verw_tax_measurement(benchmark):
    cpu = get_cpu("cascade_lake")
    benchmark.pedantic(lambda: _verw_tax(cpu), rounds=3, iterations=1)

"""Table 5: indirect branch cost under baseline/IBRS/retpoline variants."""

import pytest

from repro.core import microbench as mb
from repro.core.reporting import render_table5
from repro.cpu import Machine, all_cpus, get_cpu

PAPER = {  # cpu -> (baseline, ibrs_extra, generic_extra, amd_extra)
    "broadwell": (16, 32, 28, None),
    "skylake_client": (11, 15, 19, None),
    "cascade_lake": (3, 0, 49, None),
    "ice_lake_client": (5, 0, 21, None),
    "ice_lake_server": (1, 1, 50, None),
    "zen": (30, None, 25, 28),
    "zen2": (3, 13, 14, 0),
    "zen3": (23, 19, 13, 18),
}


def _check(measured, expected, label):
    if expected is None:
        assert measured is None, label
    else:
        assert measured == pytest.approx(expected, abs=1), label


def test_table5_reproduces_paper(save_artifact):
    rows = [mb.table5_row(cpu, iterations=500) for cpu in all_cpus()]
    for row in rows:
        base, ibrs, generic, amd = PAPER[row.cpu]
        assert row.baseline == pytest.approx(base, abs=1), row.cpu
        _check(row.ibrs_extra, ibrs, f"{row.cpu} ibrs")
        _check(row.generic_extra, generic, f"{row.cpu} generic")
        _check(row.amd_extra, amd, f"{row.cpu} amd")
    save_artifact("table5.txt", render_table5(rows))


def test_eibrs_parts_have_free_ibrs():
    """The Table 5 crossover the paper highlights: on eIBRS parts the
    IBRS delta is ~0 while retpolines stay expensive."""
    for key in ("cascade_lake", "ice_lake_client", "ice_lake_server"):
        row = mb.table5_row(get_cpu(key), iterations=300)
        assert row.ibrs_extra <= 1
        assert row.generic_extra >= 20


def bench_indirect_branch_measurement(benchmark):
    machine = Machine(get_cpu("ice_lake_server"))
    benchmark(lambda: mb.measure_indirect_branch(machine, "baseline", 200))

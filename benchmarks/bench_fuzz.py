"""Fuzz-campaign throughput report and clean-campaign guard.

Runs a pinned differential-fuzzing campaign (generated programs swept
over a three-family CPU subset under every policy, both oracles per
cell), asserts it stays violation-free — the simulator's own contracts
are the regression surface here — and reports cells/second so campaign
sizing in CI (`spectresim fuzz --smoke`) has a measured basis.
"""

import time

from repro.fuzz import FuzzConfig, fuzz_campaign

SEED = 1
PROGRAMS = 10
CPUS = ("broadwell", "cascade_lake", "zen3")


def test_fuzz_campaign_throughput(save_artifact):
    config = FuzzConfig(seed=SEED, programs=PROGRAMS, cpu_keys=CPUS)
    start = time.perf_counter()
    result = fuzz_campaign(config)
    wall = time.perf_counter() - start

    assert result.violations == [], (
        "differential fuzzing found oracle violations: "
        + "; ".join(v.detail for v in result.violations))
    assert result.cells == PROGRAMS * len(CPUS) * len(config.policies)

    instrs = sum(p.instruction_count() for p in result.programs)
    lines = [
        f"fuzz campaign: seed={SEED} programs={PROGRAMS} "
        f"cpus={len(CPUS)} policies={len(config.policies)}",
        f"corpus: {instrs} instructions across {PROGRAMS} programs",
        f"cells: {result.cells} checked, {result.skipped} skipped, "
        f"{len(result.violations)} violations",
        f"wall: {wall:.2f}s -> {result.cells / wall:,.0f} cells/s",
    ]
    save_artifact("fuzz_throughput.txt", "\n".join(lines) + "\n")


def test_fuzz_campaign_is_deterministic():
    """Same seed, same corpus, same verdicts — the property every
    reproducer file depends on."""
    a = fuzz_campaign(FuzzConfig(seed=SEED, programs=4, cpu_keys=CPUS))
    b = fuzz_campaign(FuzzConfig(seed=SEED, programs=4, cpu_keys=CPUS))
    assert [p.to_text() for p in a.programs] \
        == [p.to_text() for p in b.programs]
    assert a.verdict_map() == b.verdict_map()

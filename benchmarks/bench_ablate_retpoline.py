"""Ablation: generic vs AMD (lfence) retpolines on AMD parts.

Paper 5.3: Linux originally preferred the lfence variant on AMD, then
switched to generic retpolines in 5.15.28 after the variant was shown
racy.  We measure what that switch costs on each AMD part: nothing on
Zen 2 (where lfence retpolines were free), a small win on Zen 3, and a
small loss on Zen.
"""

import pytest

from repro.core import microbench as mb
from repro.core.reporting import render_table
from repro.cpu import Machine, get_cpu
from repro.mitigations.policy import default_v2_strategy
from repro.mitigations.base import V2Strategy

AMD = ("zen", "zen2", "zen3")


def test_retpoline_switch_costs(save_artifact):
    rows = []
    for key in AMD:
        cpu = get_cpu(key)
        generic = mb.measure_indirect_branch(Machine(cpu), "generic", 300)
        amd = mb.measure_indirect_branch(Machine(cpu), "amd", 300)
        rows.append([key, f"{amd:.0f}", f"{generic:.0f}",
                     f"{generic - amd:+.0f}"])
    save_artifact("ablate_retpoline.txt", render_table(
        "Ablation: AMD vs generic retpoline cycles on AMD parts "
        "(the Linux 5.15.28 switch)",
        ["CPU", "AMD retpoline", "generic retpoline", "switch cost"], rows))

    # Zen 2: the lfence variant was free; the forced switch costs cycles.
    zen2 = get_cpu("zen2")
    assert mb.measure_indirect_branch(Machine(zen2), "amd", 300) < \
        mb.measure_indirect_branch(Machine(zen2), "generic", 300)
    # Zen 3: generic is actually cheaper — the switch helps there.
    zen3 = get_cpu("zen3")
    assert mb.measure_indirect_branch(Machine(zen3), "generic", 300) < \
        mb.measure_indirect_branch(Machine(zen3), "amd", 300)


def test_kernel_policy_tracks_the_switch():
    for key in AMD:
        cpu = get_cpu(key)
        assert default_v2_strategy(cpu, (5, 14)) is V2Strategy.RETPOLINE_AMD
        assert default_v2_strategy(cpu, (5, 16)) is \
            V2Strategy.RETPOLINE_GENERIC


def bench_amd_retpoline(benchmark):
    machine = Machine(get_cpu("zen2"))
    benchmark(lambda: mb.measure_indirect_branch(machine, "amd", 100))

"""Table 7: RSB stuffing cycles."""

import pytest

from repro.core import microbench as mb
from repro.core.reporting import render_table7
from repro.cpu import Machine, all_cpus, get_cpu

PAPER = {
    "broadwell": 130, "skylake_client": 130, "cascade_lake": 120,
    "ice_lake_client": 40, "ice_lake_server": 69,
    "zen": 114, "zen2": 68, "zen3": 94,
}


def test_table7_reproduces_paper(save_artifact):
    values = {cpu.key: mb.table7_value(cpu, iterations=500)
              for cpu in all_cpus()}
    for key, expected in PAPER.items():
        assert values[key] == pytest.approx(expected, abs=1), key
    save_artifact("table7.txt", render_table7(values))


def test_rsb_cost_is_minor_next_to_a_context_switch():
    """Paper 5.3: stuffing is 'relatively minor compared to the total
    overhead of doing a context switch (at least several thousand
    cycles)'."""
    from repro.kernel import Kernel, Process
    from repro.mitigations import MitigationConfig
    for cpu in all_cpus():
        kernel = Kernel(Machine(cpu), MitigationConfig.all_off())
        a, b = Process("a"), Process("b")
        kernel.context_switch(a)
        switch_cost = kernel.context_switch(b)
        assert mb.table7_value(cpu, iterations=50) < switch_cost / 10


def bench_rsb_fill(benchmark):
    machine = Machine(get_cpu("broadwell"))
    benchmark(lambda: mb.measure_rsb_fill(machine, iterations=200))

"""The eBPF/kernel boundary study the paper left as future work.

Section 1's limitations list names this boundary explicitly.  We run the
paper's own methodology against it: price the boundary's mitigations
(verifier Spectre sanitation, retpolined tail calls) per CPU on a
tracing-style program attached to the syscall path, and verify the
sanitation actually closes the V1 leak it exists for.
"""

from repro.core.reporting import render_table
from repro.cpu import Machine, all_cpus, get_cpu
from repro.kernel.ebpf import (
    BPFJit,
    BPFProgram,
    Verifier,
    VerifierPolicy,
    attempt_bpf_v1,
)
from repro.mitigations import MitigationConfig, linux_default

#: A tracing program of realistic shape: a few map updates and a tail
#: call into a per-event handler, hooked on every syscall.
TRACER = BPFProgram("syscall_tracer", insns=400, map_accesses=8,
                    helper_calls=4, tail_calls=2)


def _cost(cpu, config, sanitize):
    verifier = Verifier(VerifierPolicy(unprivileged=False,
                                       sanitize_v1=sanitize))
    return BPFJit(Machine(cpu, seed=1), config, verifier)\
        .invocation_cost(TRACER)


def test_ebpf_mitigation_costs(save_artifact):
    rows = []
    for cpu in all_cpus():
        config = linux_default(cpu)
        bare = _cost(cpu, MitigationConfig.all_off(), sanitize=False)
        full = _cost(cpu, config, sanitize=True)
        overhead = 100 * (full / bare - 1)
        rows.append([cpu.key, f"{bare:.0f}", f"{full:.0f}",
                     f"{overhead:.1f}%"])
        # The boundary's tax exists but is modest: masking is cheap and
        # only tail calls pay the V2 strategy.
        assert 0 < overhead < 25, cpu.key
    save_artifact("ebpf_boundary.txt", render_table(
        "eBPF per-invocation cost: no mitigations vs sanitation + kernel "
        "V2 strategy",
        ["CPU", "bare", "mitigated", "overhead"], rows))


def test_sanitation_closes_the_leak_everywhere():
    for cpu in all_cpus():
        sanitized = Verifier(VerifierPolicy(unprivileged=True))
        raw = Verifier(VerifierPolicy(unprivileged=False, sanitize_v1=False))
        assert attempt_bpf_v1(Machine(cpu), raw, 0x3C) == 0x3C, cpu.key
        assert attempt_bpf_v1(Machine(cpu), sanitized, 0x3C) is None, cpu.key


def test_ebpf_tax_on_the_syscall_path():
    """Attached to every syscall, the tracer's cost lands on the same
    boundary Figure 2 studies — its share shrinks on bigger syscalls
    exactly like the other boundary mitigations."""
    from repro.kernel import HandlerProfile, Kernel
    cpu = get_cpu("cascade_lake")
    config = linux_default(cpu)
    kernel = Kernel(Machine(cpu, seed=1), config)
    jit = BPFJit(kernel.machine, config, Verifier(VerifierPolicy()))
    tracer_cost = jit.invocation_cost(TRACER)

    small = HandlerProfile("small", work_cycles=300)
    big = HandlerProfile("big", work_cycles=30_000)
    for _ in range(4):
        kernel.syscall(small)
        kernel.syscall(big)
    small_share = tracer_cost / (kernel.syscall(small) + tracer_cost)
    big_share = tracer_cost / (kernel.syscall(big) + tracer_cost)
    assert small_share > 3 * big_share


def bench_tracer_invocation(benchmark):
    cpu = get_cpu("zen3")
    jit = BPFJit(Machine(cpu), linux_default(cpu),
                 Verifier(VerifierPolicy()))
    block = jit.compile(TRACER)
    from repro.cpu.modes import Mode
    jit.machine.mode = Mode.KERNEL
    benchmark(lambda: jit.machine.run(block))

"""Table 8: lfence cycles (the Spectre V1 serialization primitive)."""

import pytest

from repro.core import microbench as mb
from repro.core.reporting import render_table8
from repro.cpu import Machine, all_cpus, get_cpu

PAPER = {
    "broadwell": 28, "skylake_client": 20, "cascade_lake": 15,
    "ice_lake_client": 8, "ice_lake_server": 13,
    "zen": 48, "zen2": 4, "zen3": 30,
}


def test_table8_reproduces_paper(save_artifact):
    values = {cpu.key: mb.table8_value(cpu, iterations=500)
              for cpu in all_cpus()}
    for key, expected in PAPER.items():
        assert values[key] == pytest.approx(expected, abs=1), key
    save_artifact("table8.txt", render_table8(values))


def test_newer_intel_parts_fence_faster():
    values = {cpu.key: mb.table8_value(cpu, iterations=200)
              for cpu in all_cpus()}
    assert values["ice_lake_client"] < values["cascade_lake"] < \
        values["skylake_client"] < values["broadwell"]


def bench_lfence(benchmark):
    machine = Machine(get_cpu("zen"))
    benchmark(lambda: mb.measure_lfence(machine, iterations=200))

"""Comparison: the three user-space sandboxing strategies of section 2.

The paper's related work names three ways to keep Spectre inside a
browser sandbox — targeted JIT mitigations (what Figure 3 measures),
Swivel-style deterministic hardening, and Site Isolation.  This bench
puts all three on one axis: what each costs, and which escapes each
stops, per CPU.
"""

from repro.core.reporting import render_table
from repro.cpu import Machine, all_cpus, get_cpu
from repro.jsengine.site_isolation import (
    Browser,
    PROCESS_PER_SITE,
    SHARED_RENDERER,
)
from repro.jsengine.wasm import (
    WasmCompiler,
    attempt_wasm_indirect_escape,
    attempt_wasm_sandbox_escape,
    instantiate,
)
from repro.kernel import Kernel
from repro.mitigations import linux_default

TABS = ["a.example", "b.example"] * 8


def test_security_matrix(save_artifact):
    rows = []
    for cpu in all_cpus():
        # Swivel vs raw, V1 and V2 escapes.
        v1_raw = attempt_wasm_sandbox_escape(
            Machine(cpu), instantiate(), instantiate(), hardened=False)
        v1_hard = attempt_wasm_sandbox_escape(
            Machine(cpu), instantiate(), instantiate(), hardened=True)
        v2_raw = attempt_wasm_indirect_escape(Machine(cpu), instantiate(),
                                              hardened=False)
        v2_hard = attempt_wasm_indirect_escape(Machine(cpu), instantiate(),
                                               hardened=True)
        rows.append([cpu.key,
                     "escapes" if v1_raw else "held",
                     "escapes" if v1_hard else "held",
                     "escapes" if v2_raw else "held",
                     "escapes" if v2_hard else "held"])
        assert v1_raw and not v1_hard, cpu.key
        assert not v2_hard, cpu.key
    save_artifact("sandbox_security.txt", render_table(
        "WASM sandbox escapes: raw vs Swivel-hardened",
        ["CPU", "V1 raw", "V1 Swivel", "V2 raw", "V2 Swivel"], rows))


def test_site_isolation_is_structural():
    """Process-per-site needs no predictor cooperation on any part."""
    for key in ("broadwell", "zen3"):
        cpu = get_cpu(key)
        browser = Browser(Kernel(Machine(cpu, seed=1), linux_default(cpu)),
                          PROCESS_PER_SITE)
        browser.open_site("ads.example")
        browser.open_site("bank.example")
        assert browser.cross_site_speculative_read_possible(
            "ads.example", "bank.example") is False


def test_cost_comparison(save_artifact):
    """Site isolation's tax is per tab-switch (IBPB-sized); Swivel's is
    per memory access (ALU-sized); both stay far below disabling
    speculation would."""
    rows = []
    for cpu in all_cpus():
        isolated = Browser(Kernel(Machine(cpu, seed=1), linux_default(cpu)),
                           PROCESS_PER_SITE)
        shared = Browser(Kernel(Machine(cpu, seed=1), linux_default(cpu)),
                         SHARED_RENDERER)
        switch_tax = 100 * (isolated.tab_switch_cost(list(TABS))
                            / shared.tab_switch_cost(list(TABS)) - 1)
        machine = Machine(cpu)
        module = instantiate()
        raw = WasmCompiler(machine, hardened=False)
        hard = WasmCompiler(machine, hardened=True)
        raw.access_cost(module, 64)
        hard.access_cost(module, 64)
        swivel_tax = 100 * (hard.access_cost(module, 64)
                            / raw.access_cost(module, 64) - 1)
        rows.append([cpu.key, f"{switch_tax:.1f}%", f"{swivel_tax:.1f}%"])
        assert switch_tax > 0
    save_artifact("sandbox_costs.txt", render_table(
        "Sandboxing strategy costs: site isolation (tab-switch workload) "
        "vs Swivel (per access)",
        ["CPU", "site isolation tax", "Swivel per-access tax"], rows))


def bench_tab_switching_isolated(benchmark):
    cpu = get_cpu("skylake_client")
    browser = Browser(Kernel(Machine(cpu, seed=1), linux_default(cpu)),
                      PROCESS_PER_SITE)
    benchmark(lambda: browser.tab_switch_cost(list(TABS)))

"""Crossover curves behind the paper's qualitative claims.

Two sweeps turn section 4's prose into numbers:

* overhead vs kernel-work size — why getpid suffers multi-x slowdowns
  while fork barely notices (4.2), and where "operations big enough not
  to care" begins on each part;
* SSBD slowdown vs store->load density — the single curve whose three
  points are swaptions/bodytrack/facesim (5.5), steepening across
  generations.
"""

from repro.core.reporting import render_table
from repro.core.sweeps import (
    overhead_vs_operation_size,
    ssbd_overhead_vs_forwarding_density,
)
from repro.cpu import all_cpus, get_cpu
from repro.mitigations import linux_default

SIZES = (100, 300, 1000, 3000, 10000, 30000, 100000)
DENSITIES = (0, 20, 40, 80, 120, 160)


def test_opsize_crossover_shrinks_on_newer_parts(save_artifact):
    rows = []
    crossovers = {}
    for cpu in all_cpus():
        curve = overhead_vs_operation_size(cpu, linux_default(cpu),
                                           sizes=SIZES)
        crossing = curve.first_below(5.0)
        crossovers[cpu.key] = crossing
        rows.append([cpu.key] + [f"{y:.1f}%" for y in curve.ys]
                    + [f"{crossing:.0f}" if crossing else "never"])
        # Overhead decays monotonically with operation size everywhere.
        assert list(curve.ys) == sorted(curve.ys, reverse=True), cpu.key
    save_artifact("sweep_opsize.txt", render_table(
        "Overhead vs kernel-work size (percent), plus the <5% crossover",
        ["CPU"] + [str(s) for s in SIZES] + ["<5% at"], rows))

    # On old Intel only tens-of-thousands-of-cycle operations escape the
    # tax; on Ice Lake even syscall-sized work is (nearly) free.
    assert crossovers["broadwell"] > 10_000
    assert crossovers["ice_lake_server"] < 3_000


def test_ssbd_density_curve_steepens_across_generations(save_artifact):
    rows = []
    slopes = {}
    for cpu in all_cpus():
        curve = ssbd_overhead_vs_forwarding_density(cpu,
                                                    densities=DENSITIES)
        slopes[cpu.key] = curve.ys[-1] / DENSITIES[-1]
        rows.append([cpu.key] + [f"{y:.1f}%" for y in curve.ys])
        assert curve.ys[0] < 0.5, cpu.key        # no pairs, no penalty
        assert list(curve.ys) == sorted(curve.ys), cpu.key
    save_artifact("sweep_ssbd_density.txt", render_table(
        "SSBD slowdown (%) vs store->load pairs per 10k-cycle iteration",
        ["CPU"] + [str(d) for d in DENSITIES], rows))

    intel = [slopes[k] for k in ("broadwell", "skylake_client",
                                 "cascade_lake", "ice_lake_client",
                                 "ice_lake_server")]
    assert intel == sorted(intel)
    assert slopes["zen3"] == max(slopes.values())


def bench_opsize_sweep(benchmark):
    cpu = get_cpu("zen2")
    benchmark.pedantic(
        lambda: overhead_vs_operation_size(cpu, linux_default(cpu),
                                           sizes=(100, 1000, 10000)),
        rounds=3, iterations=1)

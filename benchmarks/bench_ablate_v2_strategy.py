"""Ablation: kernel Spectre V2 strategy — IBRS vs retpoline vs eIBRS.

Reproduces the section 6.2.1 story: legacy IBRS pays an MSR write on
every kernel entry *and* kills user-space indirect prediction on
pre-eIBRS parts; retpolines avoid both; eIBRS makes the whole question
moot on parts that have it.
"""

import numpy as np

from repro.core.reporting import render_table
from repro.cpu import Machine, get_cpu
from repro.cpu import isa
from repro.mitigations import MitigationConfig, V2Strategy, linux_default
from repro.workloads.lebench import run_suite


def _geomean_cycles(cpu, strategy):
    config = MitigationConfig(
        v2_strategy=strategy,
        v2_rsb_stuffing=True,
        v2_ibpb=True,
    )
    results = run_suite(Machine(cpu, seed=1), config, iterations=10,
                        warmup=3)
    return float(np.exp(np.mean(np.log(list(results.values())))))


def test_retpolines_beat_legacy_ibrs_on_old_intel(save_artifact):
    """Why 'the cycle cost of doing this MSR write on every system call
    was viewed as unacceptably high' (section 5.3)."""
    rows = []
    for key in ("broadwell", "skylake_client"):
        cpu = get_cpu(key)
        ibrs = _geomean_cycles(cpu, V2Strategy.IBRS)
        retpoline = _geomean_cycles(cpu, V2Strategy.RETPOLINE_GENERIC)
        rows.append([key, f"{retpoline:.0f}", f"{ibrs:.0f}",
                     f"{100 * (ibrs / retpoline - 1):.1f}%"])
        assert ibrs > retpoline, key
    save_artifact("ablate_v2_strategy.txt", render_table(
        "Ablation: LEBench geomean cycles under retpoline vs legacy IBRS",
        ["CPU", "retpoline", "IBRS", "IBRS penalty"], rows))


def test_eibrs_beats_retpolines_where_available():
    """Why Linux prefers eIBRS on Cascade Lake and Ice Lake."""
    for key in ("cascade_lake", "ice_lake_server"):
        cpu = get_cpu(key)
        eibrs = _geomean_cycles(cpu, V2Strategy.EIBRS)
        retpoline = _geomean_cycles(cpu, V2Strategy.RETPOLINE_GENERIC)
        assert eibrs < retpoline, key


def test_ibrs_collateral_damage_to_user_prediction():
    """Section 6.2.1: on pre-Spectre parts, IBRS 'was disabling all
    indirect branch prediction both in user space and kernel space'."""
    cpu = get_cpu("broadwell")
    machine = Machine(cpu)
    branch = isa.branch_indirect(0x2000, pc=0x100)
    machine.execute(branch)  # train
    predicted_cost = machine.execute(branch)
    machine.msr.set_ibrs(True)
    blocked_cost = machine.execute(branch)  # user-mode branch!
    assert blocked_cost > predicted_cost


def test_eibrs_leaves_user_prediction_alone():
    cpu = get_cpu("cascade_lake")
    machine = Machine(cpu)
    machine.msr.set_ibrs(True)
    branch = isa.branch_indirect(0x2000, pc=0x100)
    machine.execute(branch)
    assert machine.execute(branch) == cpu.costs.indirect_base


def bench_lebench_under_eibrs(benchmark):
    cpu = get_cpu("cascade_lake")
    benchmark.pedantic(
        lambda: _geomean_cycles(cpu, V2Strategy.EIBRS),
        rounds=3, iterations=1)

"""Table 1: default mitigations per CPU.

Regenerates the policy matrix and checks it cell-for-cell against the
paper; benchmarks the policy engine itself.
"""

from repro.core.reporting import render_table1
from repro.cpu import all_cpus
from repro.mitigations import linux_default, table1_matrix

#: The paper's Table 1, in catalog column order ("x"=check, "!"=not default).
PAPER = {
    ("Meltdown", "Page Table Isolation"):  ["x", "x", "", "", "", "", "", ""],
    ("L1TF", "PTE Inversion"):             ["x", "x", "", "", "", "", "", ""],
    ("L1TF", "Flush L1 Cache"):            ["x", "x", "", "", "", "", "", ""],
    ("LazyFP", "Always save FPU"):         ["x"] * 8,
    ("Spectre V1", "Index Masking"):       ["x"] * 8,
    ("Spectre V1", "lfence after swapgs"): ["x"] * 8,
    ("Spectre V2", "Generic Retpoline"):   ["x", "x", "", "", "", "", "", ""],
    ("Spectre V2", "AMD Retpoline"):       ["", "", "", "", "", "x", "x", "x"],
    ("Spectre V2", "IBRS"):                [""] * 8,
    ("Spectre V2", "Enhanced IBRS"):       ["", "", "x", "x", "x", "", "", ""],
    ("Spectre V2", "RSB Stuffing"):        ["x"] * 8,
    ("Spectre V2", "IBPB"):                ["x"] * 8,
    ("Spec. Store Bypass", "SSBD"):        ["!"] * 8,
    ("MDS", "Flush CPU Buffers"):          ["x", "x", "x", "", "", "", "", ""],
    ("MDS", "Disable SMT"):                ["!", "!", "!", "", "", "", "", ""],
}

_NORM = {"yes": "x", "": "", "!": "!"}


def test_table1_reproduces_paper(save_artifact):
    matrix = table1_matrix()
    for row, cells in matrix.items():
        assert [_NORM[c] for c in cells] == PAPER[row], row
    save_artifact("table1.txt", render_table1())


def bench_policy_engine(benchmark):
    """Time computing the full default policy for all eight CPUs."""
    benchmark(lambda: [linux_default(cpu) for cpu in all_cpus()])

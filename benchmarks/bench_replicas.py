"""Batched replica tier speedup guard and telemetry report.

Times N seeded replicas of one LEBench cell run one machine at a time
(the scalar loop the section-4.1 noise methodology implies) against the
batched SoA tier (:func:`repro.cpu.replicas.run_replicas`), asserts the
batch is bit-identical to the scalar reference, asserts the steady state
needed zero scalar fallbacks, and asserts the wall-clock speedup clears
a floor.

The floor defaults to 5.0x (ISSUE 9's acceptance criterion) — on a
no-scrub cell a batch of N replicas costs one probe run plus NumPy
broadcasts, so the measured speedup approaches N and the gate has wide
margin at N = 32.  Override with ``REPLICA_SPEEDUP_FLOOR=20`` to chase
the headline number locally.
"""

import os
import time

import numpy as np

from repro.core.study import Settings, lebench_geomean
from repro.cpu import get_cpu
from repro.cpu.replicas import STATS, replica_seed, run_replicas
from repro.mitigations import linux_default

REPLICAS = 32
REPEATS = 3
SPEEDUP_FLOOR = float(os.environ.get("REPLICA_SPEEDUP_FLOOR", "5.0"))

#: Cheap but non-trivial cell: broadwell has no periodic scrub, so the
#: whole batch rides the broadcast — the steady state of the study grid.
SETTINGS = Settings(iterations=8, warmup=2, max_samples=40, rel_tol=0.005)


def _run_fn():
    cpu = get_cpu("broadwell")
    config = linux_default(cpu)
    return lambda machine_seed: lebench_geomean(cpu, config, SETTINGS,
                                                seed=machine_seed)


def test_replica_batch_speedup_and_identity(save_artifact):
    run_fn = _run_fn()
    seed = 7

    scalar_s = float("inf")
    reference = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        reference = np.array([run_fn(replica_seed(seed, i))
                              for i in range(REPLICAS)])
        scalar_s = min(scalar_s, time.perf_counter() - start)

    STATS.reset()
    batch_s = float("inf")
    batch = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        batch = run_replicas(run_fn, seed=seed, n=REPLICAS)
        batch_s = min(batch_s, time.perf_counter() - start)

    assert np.array_equal(batch.values, reference), (
        "batched replica values diverged from the scalar reference")
    assert STATS.scalar_fallbacks == 0, (
        "steady-state cell took scalar fallbacks; the broadcast fast "
        "path is not engaging")
    assert batch.converged.all()

    speedup = scalar_s / batch_s
    report = (f"replicas        {REPLICAS}\n"
              f"scalar loop     {1e3 * scalar_s:8.2f} ms\n"
              f"batched tier    {1e3 * batch_s:8.2f} ms\n"
              f"speedup         {speedup:8.2f}x (floor {SPEEDUP_FLOOR:.1f}x)\n"
              f"\n{STATS.summary()}\n")
    save_artifact("replica_speedup.txt", report)

    assert speedup >= SPEEDUP_FLOOR, (
        f"replica batch speedup {speedup:.2f}x is under the "
        f"{SPEEDUP_FLOOR:.1f}x floor")

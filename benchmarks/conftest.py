"""Shared helpers for the benchmark harness.

Every bench module regenerates one paper artifact (table or figure),
asserts its reproduction criteria, saves the rendered text under
``benchmarks/results/``, and times a representative slice of the
underlying simulation with pytest-benchmark.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def save_artifact():
    """Write one rendered artifact to benchmarks/results/<name>."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _save(name: str, content: str) -> str:
        path = os.path.join(RESULTS_DIR, name)
        with open(path, "w") as f:
            f.write(content)
        print(f"\n{content}")
        return path

    return _save


@pytest.fixture(scope="session")
def fast_settings():
    from repro.core.study import Settings
    # The noise-averaging loop is cheap (the deterministic simulation runs
    # once per config), so drive the CI tight enough that small stacked
    # components (the ~4%/~6% JS knobs) resolve cleanly.
    return Settings(iterations=12, warmup=3, max_samples=40, rel_tol=0.005)

"""Section 6.2.2: the bimodal eIBRS kernel-entry latency distribution."""

from collections import Counter

from repro.core import microbench as mb
from repro.core.reporting import render_entry_distribution
from repro.cpu import get_cpu

EIBRS_PARTS = ("cascade_lake", "ice_lake_client", "ice_lake_server")


def test_bimodal_distribution_reproduces_paper(save_artifact):
    artifacts = []
    for key in EIBRS_PARTS:
        cpu = get_cpu(key)
        latencies = mb.kernel_entry_latencies(cpu, entries=2000, eibrs=True)
        counts = Counter(latencies)
        values = sorted(counts)
        # Exactly two modes, separated by ~210 cycles.
        assert len(values) == 2, key
        assert values[1] - values[0] == \
            cpu.predictor.eibrs_scrub_extra_cycles
        # Slow entries land 'one in every 8 to 20 or so'.
        rate = len(latencies) / counts[values[1]]
        assert 8 <= rate <= 20, key
        artifacts.append(render_entry_distribution(key, latencies[:400]))
    save_artifact("eibrs_bimodal.txt", "\n".join(artifacts))


def test_unimodal_without_eibrs(save_artifact):
    for key in EIBRS_PARTS:
        latencies = mb.kernel_entry_latencies(get_cpu(key), entries=500,
                                              eibrs=False)
        assert len(set(latencies)) == 1, key


def bench_entry_latency_collection(benchmark):
    cpu = get_cpu("cascade_lake")
    benchmark(lambda: mb.kernel_entry_latencies(cpu, entries=500, eibrs=True))

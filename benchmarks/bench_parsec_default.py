"""Section 4.5: PARSEC with default mitigations — negligible overhead."""

from repro.core import study
from repro.core.reporting import render_paired
from repro.cpu import Machine, all_cpus, get_cpu
from repro.mitigations import MitigationConfig
from repro.workloads import parsec


def test_parsec_default_reproduces_paper_band(save_artifact):
    # The ±0.5% claim needs the CI driven tight, so this band uses more
    # samples than the other benches (the simulation is still run once
    # per config; only the noise-averaging loop is longer).
    from repro.core.study import Settings
    settings = Settings(iterations=12, warmup=3, max_samples=80,
                        rel_tol=0.002)
    results = study.parsec_default_overheads(all_cpus(), settings=settings)
    for r in results:
        # 'usually within ±0.5% ... never differed by more than 2%.'
        assert abs(r.overhead_percent) < 2.0, (r.cpu, r.workload)
    within_half = sum(1 for r in results if abs(r.overhead_percent) < 0.5)
    assert within_half >= len(results) * 0.6
    save_artifact("parsec_default.txt", render_paired(
        results, "Section 4.5: PARSEC, default mitigations vs none"))


def bench_parsec_swaptions_iterations(benchmark):
    from repro.kernel import Kernel
    kernel = Kernel(Machine(get_cpu("zen2")), MitigationConfig.all_off())
    runner = parsec.PARSECRunner(kernel, parsec.SWAPTIONS)
    benchmark(runner.run_iteration)

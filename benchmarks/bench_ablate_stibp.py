"""Ablation: STIBP for cross-hyperthread Spectre V2.

Not a paper table — the paper's Table 1 folds STIBP into the
``spectre_v2_user`` policy — but it closes the loop on the SMT boundary:
the shared BTB is steerable across siblings on every SMT part we model,
STIBP fixes it, and the cost is a per-thread MSR write plus losing
cross-thread prediction reuse (which no sane workload relies on).
"""

from repro.cpu import Machine, all_cpus, get_cpu
from repro.cpu import isa
from repro.cpu.smt import SMTCore
from repro.core.reporting import render_table
from repro.mitigations.stibp import (
    attempt_cross_thread_injection,
    stibp_enable_sequence,
)

SMT_PARTS = [cpu for cpu in all_cpus() if cpu.smt]


def test_stibp_matrix(save_artifact):
    rows = []
    for cpu in SMT_PARTS:
        raw = attempt_cross_thread_injection(SMTCore(cpu))
        protected = attempt_cross_thread_injection(SMTCore(cpu), stibp=True)
        msr_cost = Machine(cpu).run(stibp_enable_sequence())
        rows.append([cpu.key,
                     "x" if raw else "",
                     "x" if protected else "",
                     str(msr_cost)])
        assert not protected, cpu.key
        # Zen 3 resists via opaque indexing even without STIBP.
        assert raw == (not cpu.predictor.btb_opaque_index), cpu.key
    save_artifact("ablate_stibp.txt", render_table(
        "Ablation: cross-hyperthread V2 injection without/with STIBP",
        ["CPU", "injects (no STIBP)", "injects (STIBP)",
         "enable cost (cycles)"], rows))


def test_stibp_does_not_slow_same_thread_branches():
    """The protected thread keeps its own predictions at full speed."""
    for cpu in SMT_PARTS:
        core = SMTCore(cpu)
        victim = core.thread0
        victim.run(stibp_enable_sequence())
        branch = isa.branch_indirect(0x2000, pc=0x100)
        victim.execute(branch)
        assert victim.execute(branch) == cpu.costs.indirect_base, cpu.key


def bench_cross_thread_probe(benchmark):
    cpu = get_cpu("skylake_client")
    benchmark(lambda: attempt_cross_thread_injection(SMTCore(cpu)))

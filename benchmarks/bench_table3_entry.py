"""Table 3: syscall / sysret / swap-cr3 cycles on all eight CPUs."""

import pytest

from repro.core import microbench as mb
from repro.core.reporting import render_table3
from repro.cpu import Machine, all_cpus, get_cpu

PAPER = {  # cpu -> (syscall, sysret, swap_cr3 or None)
    "broadwell": (49, 40, 206),
    "skylake_client": (42, 42, 191),
    "cascade_lake": (70, 43, None),
    "ice_lake_client": (21, 29, None),
    "ice_lake_server": (45, 32, None),
    "zen": (63, 53, None),
    "zen2": (53, 46, None),
    "zen3": (83, 55, None),
}


def test_table3_reproduces_paper(save_artifact):
    rows = [mb.table3_row(cpu, iterations=500) for cpu in all_cpus()]
    for row in rows:
        syscall, sysret, cr3 = PAPER[row.cpu]
        assert row.syscall == pytest.approx(syscall, abs=1), row.cpu
        assert row.sysret == pytest.approx(sysret, abs=1), row.cpu
        if cr3 is None:
            assert row.swap_cr3 is None
        else:
            assert row.swap_cr3 == pytest.approx(cr3, abs=2)
    save_artifact("table3.txt", render_table3(rows))


def bench_syscall_timed_loop(benchmark):
    """Time the rdtsc-bracketed syscall loop on Broadwell."""
    machine = Machine(get_cpu("broadwell"))
    benchmark(lambda: mb.measure_syscall(machine, iterations=200))

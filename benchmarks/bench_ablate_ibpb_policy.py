"""Ablation: conditional vs always-on IBPB (spectre_v2_user=).

Linux's default only issues the Table 6 barrier for tasks that asked for
protection; ``spectre_v2_user=on`` fires it on every cross-mm switch.
This bench shows why the conditional default exists: always-on IBPB makes
context-switch-heavy workloads dramatically slower, in proportion to the
per-part IBPB cost (Table 6).
"""

import numpy as np

from repro.core.reporting import render_table
from repro.cpu import Machine, all_cpus, get_cpu
from repro.mitigations import linux_default
from repro.workloads.lebench import LEBenchRunner, get_case
from repro.kernel import Kernel

CTX_CASES = ("context_switch", "fork", "big_fork")


def _ctx_cost(cpu, always):
    config = linux_default(cpu).replace(v2_ibpb_always=always)
    kernel = Kernel(Machine(cpu, seed=1), config)
    runner = LEBenchRunner(kernel)
    case = get_case("context_switch")
    return runner.measure_case(case, iterations=12, warmup=3)


def test_always_on_ibpb_penalizes_context_switches(save_artifact):
    rows = []
    for cpu in all_cpus():
        cond = _ctx_cost(cpu, always=False)
        always = _ctx_cost(cpu, always=True)
        penalty = 100 * (always / cond - 1)
        rows.append([cpu.key, f"{cond:.0f}", f"{always:.0f}",
                     f"{penalty:.1f}%"])
        assert always > cond, cpu.key
    save_artifact("ablate_ibpb_policy.txt", render_table(
        "Ablation: context_switch cycles under conditional vs always-on "
        "IBPB",
        ["CPU", "conditional", "always-on", "penalty"], rows))


def test_penalty_tracks_table6_costs():
    """Zen's 7400-cycle IBPB hurts far more than Cascade Lake's 340."""
    zen_penalty = _ctx_cost(get_cpu("zen"), True) / \
        _ctx_cost(get_cpu("zen"), False)
    cascade_penalty = _ctx_cost(get_cpu("cascade_lake"), True) / \
        _ctx_cost(get_cpu("cascade_lake"), False)
    assert zen_penalty > cascade_penalty


def bench_context_switch_with_ibpb(benchmark):
    cpu = get_cpu("zen")
    config = linux_default(cpu).replace(v2_ibpb_always=True)
    kernel = Kernel(Machine(cpu, seed=1), config)
    runner = LEBenchRunner(kernel)
    case = get_case("context_switch")
    benchmark(lambda: runner.run_op(case))

"""Per-case LEBench overhead: the raw data behind Figure 2's geomean.

The suite-level geomean hides the structure the paper explains in 4.2:
tiny operations (getpid) suffer multi-x slowdowns on PTI/MDS parts while
fork-sized ones barely register.  This bench regenerates the full
per-case ratio table and asserts that structure per CPU.
"""

from repro.core.reporting import render_table
from repro.cpu import Machine, all_cpus, get_cpu
from repro.mitigations import MitigationConfig, linux_default
from repro.workloads import lebench


def case_ratios(cpu):
    off = lebench.run_suite(Machine(cpu, seed=1), MitigationConfig.all_off(),
                            iterations=10, warmup=3)
    on = lebench.run_suite(Machine(cpu, seed=1), linux_default(cpu),
                           iterations=10, warmup=3)
    return {name: on[name] / off[name] for name in off}


def test_per_case_table(save_artifact):
    selected = ("getpid", "small_read", "big_read", "mmap",
                "small_page_fault", "context_switch", "fork", "big_fork")
    rows = []
    for cpu in all_cpus():
        ratios = case_ratios(cpu)
        rows.append([cpu.key] + [f"{ratios[name]:.2f}x"
                                 for name in selected])

        # Structure per part: on parts paying per-crossing taxes (PTI or
        # MDS) the tiniest syscall is the worst case; elsewhere the
        # remaining cost concentrates on context switches (RSB stuffing,
        # eager FPU).  Everywhere, big ops amortize to ~nothing and the
        # small->big read gradient is monotone.
        worst = max(ratios, key=ratios.get)
        if cpu.vulns.meltdown or cpu.vulns.mds:
            assert worst == "getpid", cpu.key
        else:
            assert worst in ("context_switch", "getpid"), cpu.key
        assert ratios["big_fork"] <= 1.06, cpu.key
        assert ratios["getpid"] >= ratios["small_read"] >= \
            ratios["big_read"] or not (cpu.vulns.meltdown or cpu.vulns.mds), \
            cpu.key
    save_artifact("lebench_cases.txt", render_table(
        "Per-case LEBench slowdown (default mitigations vs none)",
        ["CPU"] + list(selected), rows))


def test_getpid_worst_case_spans_the_generational_story():
    """getpid: >3x on Broadwell down to ~1.05x on Ice Lake Server."""
    assert case_ratios(get_cpu("broadwell"))["getpid"] > 3.0
    assert case_ratios(get_cpu("ice_lake_server"))["getpid"] < 1.15


def bench_lebench_single_case(benchmark):
    from repro.kernel import Kernel
    from repro.workloads.lebench import LEBenchRunner, get_case
    cpu = get_cpu("broadwell")
    kernel = Kernel(Machine(cpu, seed=1), linux_default(cpu))
    runner = LEBenchRunner(kernel)
    case = get_case("small_read")
    benchmark(lambda: runner.run_op(case))

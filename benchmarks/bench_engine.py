"""Block-compilation engine speedup guard and hit-rate report.

Times the LEBench suite (the paper's Figure 2 workload class) through the
interpreter and through the block engine on one machine each, asserts the
results are bit-identical, asserts the engine clears a wall-clock speedup
floor, and saves a hit-rate report rendered from the engine's own
telemetry (``repro.cpu.engine.STATS``).

The floor defaults to 2.0x — deliberately below the ~3x the engine
measures on an idle machine — so CI noise cannot flake the gate; override
with ``ENGINE_SPEEDUP_FLOOR=3.0`` to reproduce the headline number
locally.
"""

import os
import time

from repro.cpu import Machine, engine, get_cpu
from repro.mitigations import MitigationConfig, linux_default
from repro.workloads.lebench import run_suite

ITERATIONS = 24
WARMUP = 6
#: Engine-warming passes before timing: lets block compilation and memo
#: recording converge so the steady state is what gets measured.
WARM_PASSES = 3
REPEATS = 7
SPEEDUP_FLOOR = float(os.environ.get("ENGINE_SPEEDUP_FLOOR", "2.0"))


def _time_suite(mode, config):
    """Best-of-N wall time for one LEBench suite pass under ``mode``."""
    cpu = get_cpu("broadwell")
    with engine.use_engine(mode):
        machine = Machine(cpu, seed=7)
        for _ in range(WARM_PASSES):
            run_suite(machine, config, iterations=ITERATIONS, warmup=WARMUP)
        best = float("inf")
        result = None
        for _ in range(REPEATS):
            start = time.perf_counter()
            result = run_suite(machine, config,
                               iterations=ITERATIONS, warmup=WARMUP)
            best = min(best, time.perf_counter() - start)
    return best, result


def test_block_engine_speedup_and_identity(save_artifact):
    engine.STATS.reset()
    lines = []
    floors = []
    for label, config in (("all_off", MitigationConfig.all_off()),
                          ("linux_default",
                           linux_default(get_cpu("broadwell")))):
        interp_s, interp_res = _time_suite(engine.ENGINE_INTERP, config)
        block_s, block_res = _time_suite(engine.ENGINE_BLOCK, config)
        assert block_res == interp_res, (
            f"block engine diverged from the interpreter on {label}")
        speedup = interp_s / block_s
        floors.append((label, speedup))
        lines.append(f"{label:14s} interp {1e3 * interp_s:7.2f} ms  "
                     f"block {1e3 * block_s:7.2f} ms  "
                     f"speedup {speedup:4.2f}x")
    lines.append("")
    lines.append(engine.STATS.summary())
    report = "\n".join(lines) + "\n"
    save_artifact("engine_speedup.txt", report)

    best_label, best = max(floors, key=lambda pair: pair[1])
    assert best >= SPEEDUP_FLOOR, (
        f"block engine best speedup {best:.2f}x ({best_label}) is under the "
        f"{SPEEDUP_FLOOR:.1f}x floor")


def test_steady_state_records_converge_to_zero():
    """After warm-up the memo set covers every recurring machine phase:
    a further suite pass must replay entirely from memos."""
    cpu = get_cpu("broadwell")
    config = MitigationConfig.all_off()
    with engine.use_engine(engine.ENGINE_BLOCK):
        machine = Machine(cpu, seed=7)
        for _ in range(3):
            run_suite(machine, config, iterations=ITERATIONS, warmup=WARMUP)
        records_before = engine.STATS.memo_records
        fallbacks_before = engine.STATS.interp_fallbacks
        hits_before = engine.STATS.memo_hits
        run_suite(machine, config, iterations=ITERATIONS, warmup=WARMUP)
        assert engine.STATS.memo_records == records_before
        assert engine.STATS.interp_fallbacks == fallbacks_before
        assert engine.STATS.memo_hits > hits_before

"""Table 6: IBPB cycles — the one mitigation that got much faster."""

import pytest

from repro.core import microbench as mb
from repro.core.reporting import render_table6
from repro.cpu import Machine, all_cpus, get_cpu

PAPER = {
    "broadwell": 5600, "skylake_client": 4500, "cascade_lake": 340,
    "ice_lake_client": 2500, "ice_lake_server": 840,
    "zen": 7400, "zen2": 1100, "zen3": 800,
}


def test_table6_reproduces_paper(save_artifact):
    values = {cpu.key: mb.table6_value(cpu, iterations=100)
              for cpu in all_cpus()}
    for key, expected in PAPER.items():
        assert values[key] == pytest.approx(expected, abs=10), key
    save_artifact("table6.txt", render_table6(values))


def test_ibpb_cost_declined_across_generations():
    """'The cost of an IBPB has generally declined over time' (5.3)."""
    values = {cpu.key: mb.table6_value(cpu, iterations=60)
              for cpu in all_cpus()}
    assert values["cascade_lake"] < values["skylake_client"] < \
        values["broadwell"]
    assert values["zen3"] < values["zen2"] < values["zen"]
    # Ice Lake Client "bucks the trend" vs Cascade Lake but still beats
    # Broadwell/Skylake by a wide margin.
    assert values["ice_lake_client"] > values["cascade_lake"]
    assert values["ice_lake_client"] < values["skylake_client"]


def bench_ibpb(benchmark):
    machine = Machine(get_cpu("zen"))
    benchmark(lambda: mb.measure_ibpb(machine, iterations=50))

"""Section 4.4b: LFS smallfile/largefile against the emulated disk."""

from repro.core import study
from repro.core.reporting import render_paired
from repro.cpu import Machine, all_cpus, get_cpu
from repro.mitigations import MitigationConfig
from repro.workloads import lfs


def test_lfs_reproduces_paper_band(save_artifact, fast_settings):
    results = study.lfs_overheads(all_cpus(), settings=fast_settings)
    values = sorted(r.overhead_percent for r in results)
    # 'The median overhead was under 2%.'
    assert values[len(values) // 2] < 2.0
    assert max(values) < 4.0  # worst case (flush-heavy smallfile) stays low
    save_artifact("vm_lfs.txt", render_paired(
        results, "Section 4.4: LFS on an emulated disk, host mitigations "
                 "on vs off"))


def test_exit_rate_is_tens_of_khz_scale():
    """The paper's rate argument: this workload reaches only tens of
    thousands of exits per (simulated) second, vs LEBench's millions of
    syscalls."""
    runner = lfs.LFSRunner(Machine(get_cpu("cascade_lake")),
                           MitigationConfig.all_off(),
                           MitigationConfig.all_off())
    cycles = sum(runner.run_iteration(lfs.SMALLFILE) for _ in range(4))
    exits = runner.hypervisor.stats.exits
    cycles_between_exits = cycles / exits
    # At ~2.4 GHz, 24k-240k cycles/exit is the 10-100 kHz band.
    assert 24_000 < cycles_between_exits < 240_000


def bench_lfs_smallfile_iteration(benchmark):
    runner = lfs.LFSRunner(Machine(get_cpu("broadwell")),
                           MitigationConfig.all_off(),
                           MitigationConfig.all_off())
    benchmark(lambda: runner.run_iteration(lfs.SMALLFILE))
